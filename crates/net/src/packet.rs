//! Typed packets and payloads.
//!
//! A [`Packet`] is one application-layer message between a device and a
//! remote endpoint. Its payload is either [`Payload::Plain`] — a list of
//! typed [`Record`]s, what the instrumented AVS Echo logs before encryption —
//! or [`Payload::Encrypted`] — an opaque blob of a known size, which is all a
//! router tap ever sees from a commercial Echo.
//!
//! The [`DataType`] variants are exactly the rows of the paper's Table 13:
//! voice recordings, persistent identifiers (customer / skill IDs), user
//! preferences (language, timezone, other), and device events (audio player
//! events plus the device metrics the Echo streams to
//! `device-metrics-us-2.amazon.com`).

use crate::domain::Domain;
use std::net::Ipv4Addr;

/// Direction of a packet relative to the device under audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Device → remote endpoint.
    Outgoing,
    /// Remote endpoint → device.
    Incoming,
}

/// The categories of data the paper observes leaving the device (Table 13),
/// plus [`DataType::TextCommand`] for the §8.1 defense that offloads
/// transcription to the device and ships only text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Raw voice recording (captured after the wake word).
    VoiceRecording,
    /// A locally-transcribed text command (§8.1's privacy-preserving
    /// replacement for shipping the raw recording).
    TextCommand,
    /// Persistent customer / user identifier.
    CustomerId,
    /// Persistent skill identifier.
    SkillId,
    /// Device language setting.
    Language,
    /// Device timezone setting.
    Timezone,
    /// Any other user preference.
    Preference,
    /// Audio player telemetry (play/pause/progress events).
    AudioPlayerEvent,
    /// Device health / usage metrics.
    DeviceMetric,
}

impl DataType {
    /// All variants, in Table 13 order (with the defense-only
    /// `TextCommand` after the voice input it replaces).
    pub const ALL: [DataType; 9] = [
        DataType::VoiceRecording,
        DataType::TextCommand,
        DataType::CustomerId,
        DataType::SkillId,
        DataType::Language,
        DataType::Timezone,
        DataType::Preference,
        DataType::AudioPlayerEvent,
        DataType::DeviceMetric,
    ];

    /// Human-readable name matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            DataType::VoiceRecording => "voice recording",
            DataType::TextCommand => "text command",
            DataType::CustomerId => "customer / user ID",
            DataType::SkillId => "skill ID",
            DataType::Language => "language",
            DataType::Timezone => "timezone",
            DataType::Preference => "other preferences",
            DataType::AudioPlayerEvent => "audio player events",
            DataType::DeviceMetric => "device metrics",
        }
    }

    /// The Table 13 category this data type belongs to.
    pub fn category(self) -> &'static str {
        match self {
            DataType::VoiceRecording | DataType::TextCommand => "Voice inputs",
            DataType::CustomerId | DataType::SkillId => "Persistent IDs",
            DataType::Language | DataType::Timezone | DataType::Preference => "User preferences",
            DataType::AudioPlayerEvent | DataType::DeviceMetric => "Device events",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One typed data item inside a plaintext payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// What kind of data this is.
    pub data_type: DataType,
    /// The value as transmitted (identifier, transcript, setting, …).
    pub value: String,
}

impl Record {
    /// Convenience constructor.
    pub fn new(data_type: DataType, value: impl Into<String>) -> Record {
        Record {
            data_type,
            value: value.into(),
        }
    }

    /// Approximate wire size of this record in bytes.
    pub fn wire_len(&self) -> usize {
        // Type tag + length prefix + value bytes.
        8 + self.value.len()
    }
}

/// Payload of a packet, as visible to a given vantage point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Opaque ciphertext of the given length (router view of TLS traffic).
    Encrypted {
        /// Ciphertext length in bytes.
        len: usize,
    },
    /// Structured plaintext records (AVS Echo instrumentation view).
    Plain(Vec<Record>),
}

impl Payload {
    /// Wire length in bytes regardless of visibility.
    pub fn wire_len(&self) -> usize {
        match self {
            Payload::Encrypted { len } => *len,
            Payload::Plain(records) => records.iter().map(Record::wire_len).sum(),
        }
    }

    /// Encrypt (opacify) the payload: what a router sees of plaintext.
    pub fn encrypt(&self) -> Payload {
        Payload::Encrypted {
            len: self.wire_len(),
        }
    }

    /// The plaintext records, if visible.
    pub fn records(&self) -> Option<&[Record]> {
        match self {
            Payload::Plain(r) => Some(r),
            Payload::Encrypted { .. } => None,
        }
    }
}

/// One application-layer message between the device and a remote endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Milliseconds since the start of the experiment.
    pub ts_ms: u64,
    /// Direction relative to the device.
    pub direction: Direction,
    /// Remote endpoint name.
    pub remote: Domain,
    /// Remote endpoint address (resolved via the experiment's [`crate::DnsTable`]).
    pub remote_ip: Ipv4Addr,
    /// Payload as emitted by the device (plaintext before encryption).
    pub payload: Payload,
}

impl Packet {
    /// Construct an outgoing packet.
    pub fn outgoing(ts_ms: u64, remote: Domain, remote_ip: Ipv4Addr, payload: Payload) -> Packet {
        Packet {
            ts_ms,
            direction: Direction::Outgoing,
            remote,
            remote_ip,
            payload,
        }
    }

    /// Construct an incoming packet.
    pub fn incoming(ts_ms: u64, remote: Domain, remote_ip: Ipv4Addr, payload: Payload) -> Packet {
        Packet {
            ts_ms,
            direction: Direction::Incoming,
            remote,
            remote_ip,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn data_type_categories_match_table13() {
        assert_eq!(DataType::VoiceRecording.category(), "Voice inputs");
        assert_eq!(DataType::CustomerId.category(), "Persistent IDs");
        assert_eq!(DataType::SkillId.category(), "Persistent IDs");
        assert_eq!(DataType::Language.category(), "User preferences");
        assert_eq!(DataType::AudioPlayerEvent.category(), "Device events");
    }

    #[test]
    fn all_lists_every_variant_once() {
        let set: std::collections::HashSet<_> = DataType::ALL.iter().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn encryption_preserves_length_and_hides_records() {
        let plain = Payload::Plain(vec![
            Record::new(DataType::VoiceRecording, "alexa open garmin"),
            Record::new(DataType::CustomerId, "A1B2C3"),
        ]);
        let enc = plain.encrypt();
        assert_eq!(enc.wire_len(), plain.wire_len());
        assert!(enc.records().is_none());
        assert_eq!(plain.records().unwrap().len(), 2);
    }

    #[test]
    fn encrypting_twice_is_idempotent() {
        let p = Payload::Plain(vec![Record::new(DataType::SkillId, "skill-42")]);
        assert_eq!(p.encrypt().encrypt(), p.encrypt());
    }

    #[test]
    fn packet_constructors_set_direction() {
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        let out = Packet::outgoing(5, dom("amazon.com"), ip, Payload::Encrypted { len: 10 });
        let inc = Packet::incoming(6, dom("amazon.com"), ip, Payload::Encrypted { len: 10 });
        assert_eq!(out.direction, Direction::Outgoing);
        assert_eq!(inc.direction, Direction::Incoming);
    }

    #[test]
    fn wire_len_counts_value_bytes() {
        let r = Record::new(DataType::Preference, "tz=UTC");
        assert_eq!(r.wire_len(), 8 + 6);
    }
}
