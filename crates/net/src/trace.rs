//! Capture serialization: a line-based trace format ("pcap-lite").
//!
//! The paper commits to releasing its captures alongside the code. This
//! module gives captures a stable, diff-friendly on-disk representation so
//! audit runs can be archived and re-analyzed without re-running the
//! simulation. One line per packet:
//!
//! ```text
//! CAPTURE <label>
//! P <ts_ms> <dir> <remote> <ip> E <len>
//! P <ts_ms> <dir> <remote> <ip> R <n> <type>=<base16 value> ...
//! END
//! ```
//!
//! Values are hex-encoded so arbitrary payload bytes survive the line
//! format. Parsing is strict: any malformed line yields a [`TraceError`].

use crate::capture::Capture;
use crate::domain::Domain;
use crate::packet::{DataType, Direction, Packet, Payload, Record};
use std::fmt::Write as _;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Errors produced when parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line did not match the expected grammar.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The trace ended inside a capture block.
    UnexpectedEof,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed { line, reason } => {
                write!(f, "malformed trace at line {line}: {reason}")
            }
            TraceError::UnexpectedEof => write!(f, "trace ended inside a capture block"),
        }
    }
}

impl std::error::Error for TraceError {}

fn type_tag(dt: DataType) -> &'static str {
    match dt {
        DataType::VoiceRecording => "voice",
        DataType::TextCommand => "text",
        DataType::CustomerId => "cid",
        DataType::SkillId => "sid",
        DataType::Language => "lang",
        DataType::Timezone => "tz",
        DataType::Preference => "pref",
        DataType::AudioPlayerEvent => "audio",
        DataType::DeviceMetric => "metric",
    }
}

fn tag_type(tag: &str) -> Option<DataType> {
    Some(match tag {
        "voice" => DataType::VoiceRecording,
        "text" => DataType::TextCommand,
        "cid" => DataType::CustomerId,
        "sid" => DataType::SkillId,
        "lang" => DataType::Language,
        "tz" => DataType::Timezone,
        "pref" => DataType::Preference,
        "audio" => DataType::AudioPlayerEvent,
        "metric" => DataType::DeviceMetric,
        _ => return None,
    })
}

fn hex_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for b in s.bytes() {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn hex_decode(s: &str) -> Option<String> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut bytes = Vec::with_capacity(s.len() / 2);
    for chunk in s.as_bytes().chunks(2) {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        bytes.push((hi * 16 + lo) as u8);
    }
    String::from_utf8(bytes).ok()
}

/// Serialize captures into the trace format.
pub fn write_trace(captures: &[Capture]) -> String {
    let mut out = String::new();
    for cap in captures {
        let _ = writeln!(out, "CAPTURE {}", hex_encode(&cap.label));
        for p in &cap.packets {
            let dir = match p.direction {
                Direction::Outgoing => "out",
                Direction::Incoming => "in",
            };
            let _ = write!(out, "P {} {} {} {}", p.ts_ms, dir, p.remote, p.remote_ip);
            match &p.payload {
                Payload::Encrypted { len } => {
                    let _ = writeln!(out, " E {len}");
                }
                Payload::Plain(records) => {
                    let _ = write!(out, " R {}", records.len());
                    for r in records {
                        let _ = write!(out, " {}={}", type_tag(r.data_type), hex_encode(&r.value));
                    }
                    let _ = writeln!(out);
                }
            }
        }
        let _ = writeln!(out, "END");
    }
    out
}

/// Parse a trace back into captures.
pub fn read_trace(text: &str) -> Result<Vec<Capture>, TraceError> {
    let mut captures = Vec::new();
    let mut current: Option<Capture> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |reason: &str| TraceError::Malformed {
            line: line_no,
            reason: reason.into(),
        };
        if line == "CAPTURE" || line.starts_with("CAPTURE ") {
            // `line` is right-trimmed, so an empty label leaves a bare
            // "CAPTURE" keyword.
            if current.is_some() {
                return Err(err("nested CAPTURE"));
            }
            let label_hex = line.strip_prefix("CAPTURE").unwrap_or("").trim();
            let label = hex_decode(label_hex).ok_or_else(|| err("bad label encoding"))?;
            current = Some(Capture::new(label));
        } else if line == "END" {
            let cap = current.take().ok_or_else(|| err("END outside capture"))?;
            captures.push(cap);
        } else if let Some(rest) = line.strip_prefix("P ") {
            let cap = current
                .as_mut()
                .ok_or_else(|| err("packet outside capture"))?;
            let mut parts = rest.split_whitespace();
            let ts_ms: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad timestamp"))?;
            let direction = match parts.next() {
                Some("out") => Direction::Outgoing,
                Some("in") => Direction::Incoming,
                _ => return Err(err("bad direction")),
            };
            let remote = parts
                .next()
                .and_then(|s| Domain::parse(s).ok())
                .ok_or_else(|| err("bad domain"))?;
            let remote_ip = parts
                .next()
                .and_then(|s| Ipv4Addr::from_str(s).ok())
                .ok_or_else(|| err("bad address"))?;
            let payload = match parts.next() {
                Some("E") => {
                    let len: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad length"))?;
                    Payload::Encrypted { len }
                }
                Some("R") => {
                    let n: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad record count"))?;
                    let mut records = Vec::with_capacity(n);
                    for _ in 0..n {
                        let kv = parts.next().ok_or_else(|| err("missing record"))?;
                        let (tag, value_hex) =
                            kv.split_once('=').ok_or_else(|| err("bad record syntax"))?;
                        let dt = tag_type(tag).ok_or_else(|| err("unknown record type"))?;
                        let value =
                            hex_decode(value_hex).ok_or_else(|| err("bad record encoding"))?;
                        records.push(Record {
                            data_type: dt,
                            value,
                        });
                    }
                    Payload::Plain(records)
                }
                _ => return Err(err("bad payload tag")),
            };
            cap.packets.push(Packet {
                ts_ms,
                direction,
                remote,
                remote_ip,
                payload,
            });
        } else {
            return Err(err("unknown line"));
        }
    }
    if current.is_some() {
        return Err(TraceError::UnexpectedEof);
    }
    Ok(captures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_captures() -> Vec<Capture> {
        let d = |s: &str| Domain::parse(s).unwrap();
        let ip = Ipv4Addr::new(10, 3, 4, 5);
        let mut a = Capture::new("garmin skill");
        a.packets.push(Packet::outgoing(
            10,
            d("avs-alexa-na.amazon.com"),
            ip,
            Payload::Plain(vec![
                Record::new(DataType::VoiceRecording, "alexa open garmin"),
                Record::new(DataType::CustomerId, "amzn1.account.ABC=="),
            ]),
        ));
        a.packets.push(Packet::incoming(
            15,
            d("chtbl.com"),
            ip,
            Payload::Encrypted { len: 512 },
        ));
        let b = Capture::new("empty, with spaces & symbols!");
        vec![a, b]
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let caps = sample_captures();
        let text = write_trace(&caps);
        let parsed = read_trace(&text).unwrap();
        assert_eq!(parsed.len(), caps.len());
        assert_eq!(parsed[0].label, caps[0].label);
        assert_eq!(parsed[0].packets, caps[0].packets);
        assert_eq!(parsed[1].label, caps[1].label);
        assert!(parsed[1].packets.is_empty());
    }

    #[test]
    fn labels_with_spaces_survive() {
        let caps = sample_captures();
        let parsed = read_trace(&write_trace(&caps)).unwrap();
        assert_eq!(parsed[1].label, "empty, with spaces & symbols!");
    }

    #[test]
    fn values_with_spaces_survive() {
        let parsed = read_trace(&write_trace(&sample_captures())).unwrap();
        let records = parsed[0].packets[0].payload.records().unwrap();
        assert_eq!(records[0].value, "alexa open garmin");
    }

    #[test]
    fn empty_trace_is_empty() {
        assert_eq!(read_trace("").unwrap().len(), 0);
        assert_eq!(write_trace(&[]), "");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            read_trace("garbage"),
            Err(TraceError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            read_trace("CAPTURE 61\nP not-a-ts out a.com 10.0.0.1 E 5\nEND"),
            Err(TraceError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            read_trace("END"),
            Err(TraceError::Malformed { .. })
        ));
        assert!(matches!(
            read_trace("CAPTURE 61"),
            Err(TraceError::UnexpectedEof)
        ));
        assert!(matches!(
            read_trace("CAPTURE 61\nCAPTURE 62\nEND"),
            Err(TraceError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_unknown_record_type() {
        let text = "CAPTURE 61\nP 1 out a.com 10.0.0.1 R 1 bogus=61\nEND";
        assert!(matches!(
            read_trace(text),
            Err(TraceError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn hex_helpers() {
        assert_eq!(hex_encode("ab"), "6162");
        assert_eq!(hex_decode("6162"), Some("ab".to_string()));
        assert_eq!(hex_decode("616"), None);
        assert_eq!(hex_decode("zz"), None);
    }
}
