//! Per-endpoint flow aggregation.
//!
//! The paper's traffic tables aggregate packets into per-domain flows
//! (counts, bytes, directions, activity spans). This module provides that
//! aggregation as a reusable primitive over captures, so analyses (and
//! downstream users of archived traces) don't reimplement it.

use crate::capture::Capture;
use crate::domain::Domain;
use crate::packet::Direction;
use std::collections::BTreeMap;

/// Aggregate statistics for one endpoint across a capture set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Packets sent device → endpoint.
    pub packets_out: usize,
    /// Packets received endpoint → device.
    pub packets_in: usize,
    /// Bytes sent device → endpoint.
    pub bytes_out: usize,
    /// Bytes received endpoint → device.
    pub bytes_in: usize,
    /// Timestamp of the first packet (ms).
    pub first_seen_ms: u64,
    /// Timestamp of the last packet (ms).
    pub last_seen_ms: u64,
    /// Number of capture sessions (skills) the endpoint appeared in.
    pub sessions: usize,
}

impl FlowStats {
    /// Total packets in both directions.
    pub fn packets(&self) -> usize {
        self.packets_out + self.packets_in
    }

    /// Total bytes in both directions.
    pub fn bytes(&self) -> usize {
        self.bytes_out + self.bytes_in
    }

    /// Activity span in milliseconds.
    pub fn span_ms(&self) -> u64 {
        self.last_seen_ms.saturating_sub(self.first_seen_ms)
    }
}

/// Per-endpoint aggregation over a capture set.
pub fn aggregate(captures: &[Capture]) -> BTreeMap<Domain, FlowStats> {
    let mut out: BTreeMap<Domain, FlowStats> = BTreeMap::new();
    for cap in captures {
        let mut seen_in_session: BTreeMap<&Domain, bool> = BTreeMap::new();
        for p in &cap.packets {
            let entry = out.entry(p.remote.clone()).or_insert(FlowStats {
                first_seen_ms: p.ts_ms,
                last_seen_ms: p.ts_ms,
                ..FlowStats::default()
            });
            match p.direction {
                Direction::Outgoing => {
                    entry.packets_out += 1;
                    entry.bytes_out += p.payload.wire_len();
                }
                Direction::Incoming => {
                    entry.packets_in += 1;
                    entry.bytes_in += p.payload.wire_len();
                }
            }
            entry.first_seen_ms = entry.first_seen_ms.min(p.ts_ms);
            entry.last_seen_ms = entry.last_seen_ms.max(p.ts_ms);
            seen_in_session.insert(&p.remote, true);
        }
        for (domain, _) in seen_in_session {
            if let Some(entry) = out.get_mut(domain) {
                entry.sessions += 1;
            }
        }
    }
    out
}

/// The top-`n` endpoints by total byte volume, descending.
pub fn top_by_bytes(stats: &BTreeMap<Domain, FlowStats>, n: usize) -> Vec<(&Domain, &FlowStats)> {
    let mut v: Vec<(&Domain, &FlowStats)> = stats.iter().collect();
    v.sort_by(|a, b| b.1.bytes().cmp(&a.1.bytes()).then(a.0.cmp(b.0)));
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{DataType, Packet, Payload, Record};
    use std::net::Ipv4Addr;

    fn cap(label: &str, packets: Vec<Packet>) -> Capture {
        let mut c = Capture::new(label);
        c.packets = packets;
        c
    }

    fn out(ts: u64, name: &str, len: usize) -> Packet {
        Packet::outgoing(
            ts,
            Domain::parse(name).unwrap(),
            Ipv4Addr::new(10, 0, 0, 1),
            Payload::Encrypted { len },
        )
    }

    fn inc(ts: u64, name: &str, len: usize) -> Packet {
        Packet::incoming(
            ts,
            Domain::parse(name).unwrap(),
            Ipv4Addr::new(10, 0, 0, 1),
            Payload::Encrypted { len },
        )
    }

    #[test]
    fn directions_and_bytes_aggregate() {
        let captures = vec![cap(
            "a",
            vec![
                out(1, "x.amazon.com", 100),
                inc(5, "x.amazon.com", 400),
                out(9, "chtbl.com", 50),
            ],
        )];
        let stats = aggregate(&captures);
        let amazon = &stats[&Domain::parse("x.amazon.com").unwrap()];
        assert_eq!(amazon.packets_out, 1);
        assert_eq!(amazon.packets_in, 1);
        assert_eq!(amazon.bytes(), 500);
        assert_eq!(amazon.first_seen_ms, 1);
        assert_eq!(amazon.last_seen_ms, 5);
        assert_eq!(amazon.span_ms(), 4);
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn sessions_count_capture_blocks_not_packets() {
        let captures = vec![
            cap(
                "a",
                vec![out(1, "x.amazon.com", 10), out(2, "x.amazon.com", 10)],
            ),
            cap("b", vec![out(3, "x.amazon.com", 10)]),
        ];
        let stats = aggregate(&captures);
        assert_eq!(stats[&Domain::parse("x.amazon.com").unwrap()].sessions, 2);
    }

    #[test]
    fn plaintext_payload_bytes_counted() {
        let p = Packet::outgoing(
            1,
            Domain::parse("a.amazon.com").unwrap(),
            Ipv4Addr::new(10, 0, 0, 1),
            Payload::Plain(vec![Record::new(DataType::SkillId, "abcd")]),
        );
        let stats = aggregate(&[cap("s", vec![p])]);
        assert_eq!(stats[&Domain::parse("a.amazon.com").unwrap()].bytes_out, 12);
    }

    #[test]
    fn top_by_bytes_orders_descending() {
        let captures = vec![cap(
            "a",
            vec![
                out(1, "big.amazon.com", 1000),
                out(2, "small.amazon.com", 10),
                out(3, "mid.amazon.com", 100),
            ],
        )];
        let stats = aggregate(&captures);
        let top = top_by_bytes(&stats, 2);
        assert_eq!(top[0].0.as_str(), "big.amazon.com");
        assert_eq!(top[1].0.as_str(), "mid.amazon.com");
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn empty_captures_empty_stats() {
        assert!(aggregate(&[]).is_empty());
        assert!(aggregate(&[cap("empty", vec![])]).is_empty());
    }
}
