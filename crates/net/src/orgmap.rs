//! Domain → organization resolution.
//!
//! The paper maps contacted domain names to their parent organizations using
//! the DuckDuckGo Tracker Radar entity list, Crunchbase and WHOIS. We embed
//! the equivalent mapping for every organization observed in the study
//! (Tables 1 and 14) and let callers register more (the ad-tech simulation
//! adds its advertisers at setup time).

use crate::domain::Domain;
use std::collections::BTreeMap;

/// Coarse traffic-party classification relative to a given skill.
///
/// Table 1 splits contacted domains into Amazon (platform party), the skill's
/// own vendor (first party), and everyone else (third party).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OrgClass {
    /// Amazon — the platform operator.
    Amazon,
    /// The organization that publishes the skill under audit.
    SkillVendor,
    /// Any other organization.
    ThirdParty,
}

impl std::fmt::Display for OrgClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OrgClass::Amazon => "Amazon",
            OrgClass::SkillVendor => "Skill vendor",
            OrgClass::ThirdParty => "Third party",
        };
        f.write_str(s)
    }
}

/// Registrable-domain → organization lookup table.
///
/// Backed by a `BTreeMap` so every iteration is in lexicographic domain
/// order — no view of the map can leak insertion order.
#[derive(Debug, Clone)]
pub struct OrgMap {
    by_registrable: BTreeMap<String, String>,
}

/// The organization name used for Amazon throughout the workspace.
pub const AMAZON: &str = "Amazon Technologies, Inc.";

/// Built-in (registrable domain, organization) pairs covering every
/// organization the paper observed (Tables 1 and 14).
const BUILTIN: &[(&str, &str)] = &[
    // Amazon infrastructure.
    ("amazon.com", AMAZON),
    ("amcs-tachyon.com", AMAZON),
    ("amazonalexa.com", AMAZON),
    ("cloudfront.net", AMAZON),
    ("amazonaws.com", AMAZON),
    ("acsechocaptiveportal.com", AMAZON),
    ("fireoscaptiveportal.com", AMAZON),
    ("a2z.com", AMAZON),
    ("amazon-dss.com", AMAZON),
    ("amazon-adsystem.com", AMAZON),
    ("music.amazon.com", AMAZON),
    // Skill vendors with their own backends.
    ("garmincdn.com", "Garmin International"),
    ("garmin.com", "Garmin International"),
    ("youversionapi.com", "Life Covenant Church, Inc."),
    // Third parties from Table 14.
    ("chtbl.com", "Chartable Holding Inc"),
    ("cdn77.org", "DataCamp Limited"),
    ("dillilabs.com", "Dilli Labs LLC"),
    ("libsyn.com", "Liberated Syndication"),
    ("npr.org", "National Public Radio, Inc."),
    ("meethue.com", "Philips International B.V."),
    ("podtrac.com", "Podtrac Inc"),
    ("megaphone.fm", "Spotify AB"),
    ("spotify.com", "Spotify AB"),
    ("streamtheworld.com", "Triton Digital, Inc."),
    ("tritondigital.com", "Triton Digital, Inc."),
    ("omny.fm", "Triton Digital, Inc."),
    ("voiceapps.com", "Voice Apps LLC"),
    ("pandora.com", "Pandora Media, LLC"),
];

impl Default for OrgMap {
    fn default() -> OrgMap {
        OrgMap::new()
    }
}

impl OrgMap {
    /// Create a map preloaded with the paper's organization dataset.
    pub fn new() -> OrgMap {
        let mut by_registrable = BTreeMap::new();
        for &(dom, org) in BUILTIN {
            by_registrable.insert(dom.to_string(), org.to_string());
        }
        OrgMap { by_registrable }
    }

    /// Create an empty map (for tests and custom ecosystems).
    pub fn empty() -> OrgMap {
        OrgMap {
            by_registrable: BTreeMap::new(),
        }
    }

    /// Register an organization for a registrable domain.
    pub fn register(&mut self, registrable: &str, org: &str) {
        self.by_registrable
            .insert(registrable.to_ascii_lowercase(), org.to_string());
    }

    /// Resolve a (sub)domain to its organization, if known.
    ///
    /// Falls back from the full name to the registrable domain, mirroring
    /// the paper's entity matching.
    pub fn org_of(&self, domain: &Domain) -> Option<&str> {
        if let Some(org) = self.by_registrable.get(domain.as_str()) {
            return Some(org);
        }
        let reg = domain.registrable()?;
        self.by_registrable.get(reg.as_str()).map(String::as_str)
    }

    /// Classify a domain relative to a skill vendor's organization name.
    ///
    /// Unknown domains classify as third party — the conservative choice the
    /// paper makes for unattributable endpoints.
    pub fn classify(&self, domain: &Domain, skill_vendor_org: &str) -> OrgClass {
        match self.org_of(domain) {
            Some(org) if org == AMAZON => OrgClass::Amazon,
            Some(org) if org == skill_vendor_org => OrgClass::SkillVendor,
            _ => OrgClass::ThirdParty,
        }
    }

    /// Number of registered registrable domains.
    pub fn len(&self) -> usize {
        self.by_registrable.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.by_registrable.is_empty()
    }

    /// All (registrable domain, organization) pairs in lexicographic domain
    /// order — the canonical view used for hashing and diffing (the backing
    /// `BTreeMap` already iterates in that order).
    pub fn entries_sorted(&self) -> Vec<(&str, &str)> {
        self.by_registrable
            .iter()
            .map(|(d, o)| (d.as_str(), o.as_str()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn subdomains_resolve_through_registrable() {
        let m = OrgMap::new();
        assert_eq!(m.org_of(&d("device-metrics-us-2.amazon.com")), Some(AMAZON));
        assert_eq!(m.org_of(&d("play.podtrac.com")), Some("Podtrac Inc"));
        assert_eq!(
            m.org_of(&d("turnernetworksales.mc.tritondigital.com")),
            Some("Triton Digital, Inc.")
        );
        assert_eq!(
            m.org_of(&d("ingestion.us-east-1.prod.arteries.alexa.a2z.com")),
            Some(AMAZON)
        );
    }

    #[test]
    fn unknown_domain_is_none() {
        let m = OrgMap::new();
        assert_eq!(m.org_of(&d("totally-unknown.example.com")), None);
    }

    #[test]
    fn classify_amazon_vendor_third() {
        let m = OrgMap::new();
        assert_eq!(
            m.classify(&d("api.amazon.com"), "Garmin International"),
            OrgClass::Amazon
        );
        assert_eq!(
            m.classify(&d("static.garmincdn.com"), "Garmin International"),
            OrgClass::SkillVendor
        );
        assert_eq!(
            m.classify(&d("play.podtrac.com"), "Garmin International"),
            OrgClass::ThirdParty
        );
        // Unknown endpoints conservatively classify as third party.
        assert_eq!(
            m.classify(&d("mystery.example.com"), "Garmin"),
            OrgClass::ThirdParty
        );
    }

    #[test]
    fn registration_overrides() {
        let mut m = OrgMap::empty();
        m.register("example.com", "Example Corp");
        assert_eq!(m.org_of(&d("api.example.com")), Some("Example Corp"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn exact_name_takes_priority_over_registrable() {
        let mut m = OrgMap::new();
        m.register("special.amazon.com", "Shadow Org");
        assert_eq!(m.org_of(&d("special.amazon.com")), Some("Shadow Org"));
        assert_eq!(m.org_of(&d("other.amazon.com")), Some(AMAZON));
    }

    #[test]
    fn debug_dump_is_insertion_order_independent() {
        // Regression test for the HashMap → BTreeMap conversion.
        let mut a = OrgMap::empty();
        a.register("alpha.com", "Alpha");
        a.register("beta.com", "Beta");
        let mut b = OrgMap::empty();
        b.register("beta.com", "Beta");
        b.register("alpha.com", "Alpha");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.entries_sorted(), b.entries_sorted());
    }

    #[test]
    fn builtin_covers_every_table14_org() {
        let m = OrgMap::new();
        let orgs = [
            "Chartable Holding Inc",
            "DataCamp Limited",
            "Dilli Labs LLC",
            "Garmin International",
            "Liberated Syndication",
            "National Public Radio, Inc.",
            "Philips International B.V.",
            "Podtrac Inc",
            "Spotify AB",
            "Triton Digital, Inc.",
            "Voice Apps LLC",
            "Life Covenant Church, Inc.",
        ];
        for org in orgs {
            assert!(
                BUILTIN.iter().any(|&(_, o)| o == org),
                "missing builtin org {org}"
            );
        }
        assert!(m.len() >= BUILTIN.len() - 2); // some domains share an org
    }
}
