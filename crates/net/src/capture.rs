//! Capture taps: the two vantage points of the paper's methodology.
//!
//! * [`RouterTap`] — the RPi bridged-AP router. Sees **every** packet the
//!   device exchanges, but cannot decrypt TLS: each captured [`FlowRecord`]
//!   carries only endpoint, direction, timing and ciphertext size.
//! * [`AvsTap`] — the instrumented AVS Device SDK. Logs payloads **before**
//!   encryption, so captured packets retain their typed records. The AVS
//!   Echo's limitations are enforced by the device model in
//!   `alexa-platform` (Amazon-only endpoints, no streaming skills); this tap
//!   faithfully records whatever that device emits.
//!
//! Both taps support the paper's per-skill capture discipline: `tcpdump` was
//! enabled before each skill install and disabled after uninstall, so every
//! capture is cleanly attributable to one skill. [`Capture::label`] carries
//! that attribution.

use crate::domain::Domain;
use crate::packet::{Direction, Packet, Payload};
use alexa_fault::{FaultChannel, FaultPlane};
use std::net::Ipv4Addr;

/// One flow observation from the router vantage point: everything `tcpdump`
/// can say about an encrypted exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// Milliseconds since the start of the experiment.
    pub ts_ms: u64,
    /// Direction relative to the device.
    pub direction: Direction,
    /// Remote endpoint name (from DNS packets in the same capture).
    pub remote: Domain,
    /// Remote endpoint address.
    pub remote_ip: Ipv4Addr,
    /// Ciphertext bytes on the wire.
    pub bytes: usize,
}

/// A labelled set of packets recorded by one tap session.
///
/// `label` identifies the workload the capture is attributed to (in the
/// paper: one skill per capture session).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Capture {
    /// Attribution label (e.g. a skill ID) for this capture session.
    pub label: String,
    /// Captured packets, in timestamp order.
    pub packets: Vec<Packet>,
}

impl Capture {
    /// Create an empty capture with an attribution label.
    pub fn new(label: impl Into<String>) -> Capture {
        Capture {
            label: label.into(),
            packets: Vec::new(),
        }
    }

    /// Total bytes across all packets.
    pub fn total_bytes(&self) -> usize {
        self.packets.iter().map(|p| p.payload.wire_len()).sum()
    }

    /// Distinct remote endpoints contacted, sorted.
    pub fn endpoints(&self) -> Vec<Domain> {
        let mut set: Vec<Domain> = self.packets.iter().map(|p| p.remote.clone()).collect();
        set.sort();
        set.dedup();
        set
    }
}

/// Running totals a tap accumulates across its whole life.
///
/// The observability layer reads these out once per shard — the counters are
/// plain integers updated on the capture hot path, so instrumentation costs
/// nothing beyond the additions and never touches the captured data itself.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TapStats {
    /// Capture sessions opened (`start` calls).
    pub sessions: usize,
    /// Packets observed inside a session.
    pub packets: usize,
    /// Wire bytes across all observed packets.
    pub bytes: usize,
    /// Packets lost to an injected capture fault.
    pub dropped: usize,
    /// Packets recorded with an injected flow truncation.
    pub truncated: usize,
}

impl TapStats {
    fn observe(&mut self, wire_len: usize) {
        self.packets += 1;
        self.bytes += wire_len;
    }
}

/// Per-session fault bookkeeping shared by both taps: a monotone packet
/// sequence number makes the structural key `label/seq`, so fault placement
/// depends only on what the packet *is* within its session, never on
/// scheduling.
#[derive(Debug)]
struct TapFaults {
    plane: FaultPlane,
    seq: usize,
}

impl Default for TapFaults {
    fn default() -> TapFaults {
        TapFaults {
            plane: FaultPlane::disabled(),
            seq: 0,
        }
    }
}

impl TapFaults {
    /// Decide the fate of the next packet in the session labelled `label`.
    /// Advances the sequence number for every offered packet, so drops keep
    /// downstream keys stable.
    fn admit(&mut self, label: &str) -> PacketFate {
        if !self.plane.is_active() {
            return PacketFate::Keep;
        }
        let key = format!("{label}/{seq}", seq = self.seq);
        self.seq += 1;
        if self.plane.fires(FaultChannel::PacketDrop, &key) {
            PacketFate::Drop
        } else if self.plane.fires(FaultChannel::FlowTruncation, &key) {
            PacketFate::Truncate(key)
        } else {
            PacketFate::Keep
        }
    }
}

enum PacketFate {
    Keep,
    Drop,
    Truncate(String),
}

/// The RPi router tap: records every packet, encrypted view only.
#[derive(Debug, Default)]
pub struct RouterTap {
    session: Option<Capture>,
    finished: Vec<Capture>,
    stats: TapStats,
    faults: TapFaults,
}

impl RouterTap {
    /// Create a tap with no active session.
    pub fn new() -> RouterTap {
        RouterTap::default()
    }

    /// A tap whose capture path consults `plane` for packet drops and flow
    /// truncation. With an inactive plane this is exactly [`RouterTap::new`].
    pub fn with_faults(plane: FaultPlane) -> RouterTap {
        RouterTap {
            faults: TapFaults { plane, seq: 0 },
            ..RouterTap::default()
        }
    }

    /// Begin a capture session (the paper's "enable tcpdump").
    ///
    /// Any in-progress session is finalized first.
    pub fn start(&mut self, label: impl Into<String>) {
        self.stop();
        self.stats.sessions += 1;
        self.faults.seq = 0;
        self.session = Some(Capture::new(label));
    }

    /// Observe one packet. No-op unless a session is active. The payload is
    /// opacified: the router sees TLS ciphertext only.
    pub fn observe(&mut self, packet: &Packet) {
        if self.session.is_some() {
            self.admit(packet.clone());
        }
    }

    /// Observe a whole packet batch in one call, taking ownership so the
    /// payloads are encrypted in place instead of cloned packet-by-packet.
    /// No-op unless a session is active.
    pub fn observe_batch(&mut self, packets: Vec<Packet>) {
        if self.session.is_some() {
            if let Some(s) = &mut self.session {
                s.packets.reserve(packets.len());
            }
            for p in packets {
                self.admit(p);
            }
        }
    }

    /// Encrypt, apply any injected capture fault, and record one packet.
    fn admit(&mut self, mut p: Packet) {
        let Some(session) = &mut self.session else {
            return;
        };
        p.payload = p.payload.encrypt();
        if self.faults.plane.is_active() {
            match self.faults.admit(&session.label) {
                PacketFate::Drop => {
                    self.stats.dropped += 1;
                    return;
                }
                PacketFate::Truncate(key) => {
                    if let Payload::Encrypted { len } = p.payload {
                        p.payload = Payload::Encrypted {
                            len: self.faults.plane.truncated_len(&key, len),
                        };
                    }
                    self.stats.truncated += 1;
                }
                PacketFate::Keep => {}
            }
        }
        self.stats.observe(p.payload.wire_len());
        session.packets.push(p);
    }

    /// Running totals across the tap's whole life.
    pub fn stats(&self) -> TapStats {
        self.stats
    }

    /// End the active session (the paper's "disable tcpdump").
    pub fn stop(&mut self) {
        if let Some(s) = self.session.take() {
            self.finished.push(s);
        }
    }

    /// All finalized captures, in session order.
    pub fn captures(&self) -> &[Capture] {
        &self.finished
    }

    /// Consume the tap, returning its captures.
    pub fn into_captures(mut self) -> Vec<Capture> {
        self.stop();
        self.finished
    }

    /// Flatten all captures into router-view flow records.
    pub fn flow_records(&self) -> Vec<(String, FlowRecord)> {
        let mut out = Vec::new();
        for c in &self.finished {
            for p in &c.packets {
                out.push((
                    c.label.clone(),
                    FlowRecord {
                        ts_ms: p.ts_ms,
                        direction: p.direction,
                        remote: p.remote.clone(),
                        remote_ip: p.remote_ip,
                        bytes: p.payload.wire_len(),
                    },
                ));
            }
        }
        out
    }
}

/// The AVS Echo tap: records payloads before encryption.
#[derive(Debug, Default)]
pub struct AvsTap {
    session: Option<Capture>,
    finished: Vec<Capture>,
    stats: TapStats,
    faults: TapFaults,
}

impl AvsTap {
    /// Create a tap with no active session.
    pub fn new() -> AvsTap {
        AvsTap::default()
    }

    /// A tap whose capture path consults `plane` for packet drops and flow
    /// truncation. With an inactive plane this is exactly [`AvsTap::new`].
    pub fn with_faults(plane: FaultPlane) -> AvsTap {
        AvsTap {
            faults: TapFaults { plane, seq: 0 },
            ..AvsTap::default()
        }
    }

    /// Begin a capture session.
    pub fn start(&mut self, label: impl Into<String>) {
        self.stop();
        self.stats.sessions += 1;
        self.faults.seq = 0;
        self.session = Some(Capture::new(label));
    }

    /// Observe one packet with full plaintext visibility.
    pub fn observe(&mut self, packet: &Packet) {
        if self.session.is_some() {
            self.admit(packet.clone());
        }
    }

    /// Observe a whole packet batch in one call, taking ownership to avoid
    /// per-packet clones. No-op unless a session is active.
    pub fn observe_batch(&mut self, packets: Vec<Packet>) {
        let Some(session) = &mut self.session else {
            return;
        };
        if !self.faults.plane.is_active() {
            for p in &packets {
                self.stats.observe(p.payload.wire_len());
            }
            if session.packets.is_empty() {
                session.packets = packets;
            } else {
                session.packets.extend(packets);
            }
            return;
        }
        for p in packets {
            self.admit(p);
        }
    }

    /// Apply any injected capture fault and record one packet. The AVS view
    /// is plaintext, so truncation cuts trailing typed records rather than
    /// ciphertext bytes.
    fn admit(&mut self, mut p: Packet) {
        let Some(session) = &mut self.session else {
            return;
        };
        if self.faults.plane.is_active() {
            match self.faults.admit(&session.label) {
                PacketFate::Drop => {
                    self.stats.dropped += 1;
                    return;
                }
                PacketFate::Truncate(key) => {
                    match &mut p.payload {
                        Payload::Plain(records) => {
                            let keep = self.faults.plane.truncated_len(&key, records.len());
                            records.truncate(keep);
                        }
                        Payload::Encrypted { len } => {
                            *len = self.faults.plane.truncated_len(&key, *len);
                        }
                    }
                    self.stats.truncated += 1;
                }
                PacketFate::Keep => {}
            }
        }
        self.stats.observe(p.payload.wire_len());
        session.packets.push(p);
    }

    /// Running totals across the tap's whole life.
    pub fn stats(&self) -> TapStats {
        self.stats
    }

    /// End the active session.
    pub fn stop(&mut self) {
        if let Some(s) = self.session.take() {
            self.finished.push(s);
        }
    }

    /// All finalized captures.
    pub fn captures(&self) -> &[Capture] {
        &self.finished
    }

    /// Consume the tap, returning its captures.
    pub fn into_captures(mut self) -> Vec<Capture> {
        self.stop();
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{DataType, Payload, Record};

    fn pkt(ts: u64, name: &str, records: Vec<Record>) -> Packet {
        Packet::outgoing(
            ts,
            Domain::parse(name).unwrap(),
            Ipv4Addr::new(10, 1, 2, 3),
            Payload::Plain(records),
        )
    }

    #[test]
    fn router_tap_hides_payloads() {
        let mut tap = RouterTap::new();
        tap.start("skill-a");
        tap.observe(&pkt(
            1,
            "amazon.com",
            vec![Record::new(DataType::VoiceRecording, "hello")],
        ));
        tap.stop();
        let caps = tap.captures();
        assert_eq!(caps.len(), 1);
        assert!(caps[0].packets[0].payload.records().is_none());
        // ...but preserves size.
        assert_eq!(caps[0].packets[0].payload.wire_len(), 8 + 5);
    }

    #[test]
    fn avs_tap_preserves_payloads() {
        let mut tap = AvsTap::new();
        tap.start("skill-a");
        tap.observe(&pkt(
            1,
            "amazon.com",
            vec![Record::new(DataType::CustomerId, "A1")],
        ));
        tap.stop();
        let records = tap.captures()[0].packets[0].payload.records().unwrap();
        assert_eq!(records[0].data_type, DataType::CustomerId);
    }

    #[test]
    fn observe_without_session_is_dropped() {
        let mut tap = RouterTap::new();
        tap.observe(&pkt(1, "amazon.com", vec![]));
        tap.start("s");
        tap.stop();
        assert_eq!(tap.captures().len(), 1);
        assert!(tap.captures()[0].packets.is_empty());
    }

    #[test]
    fn sessions_attribute_traffic_to_labels() {
        let mut tap = RouterTap::new();
        tap.start("garmin");
        tap.observe(&pkt(1, "static.garmincdn.com", vec![]));
        tap.start("sonos"); // implicit stop of garmin session
        tap.observe(&pkt(2, "amazon.com", vec![]));
        tap.stop();
        let caps = tap.captures();
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[0].label, "garmin");
        assert_eq!(caps[1].label, "sonos");
        assert_eq!(caps[0].packets[0].remote.as_str(), "static.garmincdn.com");
    }

    #[test]
    fn flow_records_flatten_with_labels() {
        let mut tap = RouterTap::new();
        tap.start("a");
        tap.observe(&pkt(
            1,
            "amazon.com",
            vec![Record::new(DataType::SkillId, "x")],
        ));
        tap.observe(&pkt(2, "chtbl.com", vec![]));
        tap.stop();
        let flows = tap.flow_records();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].0, "a");
        assert_eq!(flows[1].1.remote.as_str(), "chtbl.com");
    }

    #[test]
    fn capture_endpoint_dedup() {
        let mut c = Capture::new("x");
        c.packets.push(pkt(1, "amazon.com", vec![]));
        c.packets.push(pkt(2, "amazon.com", vec![]));
        c.packets.push(pkt(3, "api.amazon.com", vec![]));
        assert_eq!(c.endpoints().len(), 2);
    }

    #[test]
    fn observe_batch_matches_per_packet_observe() {
        let batch = vec![
            pkt(
                1,
                "amazon.com",
                vec![Record::new(DataType::VoiceRecording, "hi")],
            ),
            pkt(2, "chtbl.com", vec![]),
        ];
        let mut one = RouterTap::new();
        one.start("s");
        for p in &batch {
            one.observe(p);
        }
        one.stop();
        let mut many = RouterTap::new();
        many.start("s");
        many.observe_batch(batch.clone());
        many.stop();
        assert_eq!(
            format!("{:?}", one.captures()),
            format!("{:?}", many.captures())
        );

        let mut avs_one = AvsTap::new();
        avs_one.start("s");
        for p in &batch {
            avs_one.observe(p);
        }
        avs_one.stop();
        let mut avs_many = AvsTap::new();
        avs_many.start("s");
        avs_many.observe_batch(batch);
        avs_many.stop();
        assert_eq!(
            format!("{:?}", avs_one.captures()),
            format!("{:?}", avs_many.captures())
        );
    }

    #[test]
    fn observe_batch_without_session_is_dropped() {
        let mut tap = RouterTap::new();
        tap.observe_batch(vec![pkt(1, "amazon.com", vec![])]);
        tap.start("s");
        tap.stop();
        assert!(tap.captures()[0].packets.is_empty());
    }

    #[test]
    fn tap_stats_track_sessions_packets_bytes() {
        let mut tap = RouterTap::new();
        assert_eq!(tap.stats(), TapStats::default());
        tap.observe(&pkt(0, "amazon.com", vec![])); // no session: not counted
        tap.start("a");
        tap.observe(&pkt(
            1,
            "amazon.com",
            vec![Record::new(DataType::VoiceRecording, "hello")],
        ));
        tap.start("b");
        tap.observe_batch(vec![
            pkt(2, "chtbl.com", vec![]),
            pkt(3, "amazon.com", vec![]),
        ]);
        tap.stop();
        let s = tap.stats();
        assert_eq!(s.sessions, 2);
        assert_eq!(s.packets, 3);
        // Bytes are post-encryption wire lengths, so they match the capture.
        let captured: usize = tap.captures().iter().map(Capture::total_bytes).sum();
        assert_eq!(s.bytes, captured);

        let mut avs = AvsTap::new();
        avs.start("s");
        avs.observe_batch(vec![pkt(
            1,
            "amazon.com",
            vec![Record::new(DataType::CustomerId, "A1")],
        )]);
        avs.observe(&pkt(2, "amazon.com", vec![]));
        let s = avs.stats();
        assert_eq!((s.sessions, s.packets), (1, 2));
        assert_eq!(
            s.bytes,
            avs.captures()
                .iter()
                .chain(avs.session.iter())
                .map(Capture::total_bytes)
                .sum::<usize>()
        );
    }

    #[test]
    fn inactive_fault_plane_changes_nothing() {
        use alexa_fault::FaultProfile;
        let batch = vec![
            pkt(
                1,
                "amazon.com",
                vec![Record::new(DataType::VoiceRecording, "hi")],
            ),
            pkt(2, "chtbl.com", vec![]),
        ];
        let mut plain = RouterTap::new();
        let mut gated = RouterTap::with_faults(FaultPlane::new(7, FaultProfile::none()));
        for tap in [&mut plain, &mut gated] {
            tap.start("s");
            tap.observe_batch(batch.clone());
            tap.stop();
        }
        assert_eq!(
            format!("{:?}", plain.captures()),
            format!("{:?}", gated.captures())
        );
        assert_eq!(plain.stats(), gated.stats());
    }

    #[test]
    fn faulted_tap_drops_and_truncates_deterministically() {
        use alexa_fault::FaultProfile;
        let batch: Vec<Packet> = (0..200)
            .map(|i| {
                pkt(
                    i,
                    "amazon.com",
                    vec![Record::new(DataType::VoiceRecording, "hello world")],
                )
            })
            .collect();
        let run = |seed: u64| {
            let mut tap = RouterTap::with_faults(FaultPlane::new(seed, FaultProfile::hostile()));
            tap.start("skill");
            tap.observe_batch(batch.clone());
            tap.stop();
            (format!("{:?}", tap.captures()), tap.stats())
        };
        let (caps_a, stats_a) = run(7);
        let (caps_b, stats_b) = run(7);
        assert_eq!(caps_a, caps_b, "same seed, same capture");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.dropped > 0, "hostile profile must drop packets");
        assert!(stats_a.truncated > 0, "hostile profile must truncate flows");
        assert_eq!(stats_a.packets + stats_a.dropped, batch.len());
        let (caps_c, _) = run(8);
        assert_ne!(caps_a, caps_c, "fault placement follows the seed");
    }

    #[test]
    fn avs_truncation_cuts_records_not_packets() {
        use alexa_fault::FaultProfile;
        let batch: Vec<Packet> = (0..100)
            .map(|i| {
                pkt(
                    i,
                    "avs-alexa-na.amazon.com",
                    vec![
                        Record::new(DataType::VoiceRecording, "hello"),
                        Record::new(DataType::CustomerId, "A1"),
                        Record::new(DataType::SkillId, "s"),
                        Record::new(DataType::Timezone, "tz"),
                    ],
                )
            })
            .collect();
        let mut tap = AvsTap::with_faults(FaultPlane::new(1234, FaultProfile::hostile()));
        tap.start("skill");
        tap.observe_batch(batch);
        tap.stop();
        let stats = tap.stats();
        assert!(stats.truncated > 0);
        // Truncated packets keep a non-empty record prefix.
        assert!(tap.captures()[0]
            .packets
            .iter()
            .all(|p| !p.payload.records().unwrap().is_empty()));
        assert!(tap.captures()[0]
            .packets
            .iter()
            .any(|p| p.payload.records().unwrap().len() < 4));
    }

    #[test]
    fn fault_keys_reset_per_session() {
        use alexa_fault::FaultProfile;
        // Two sessions with the same label see identical fault placement.
        let plane = FaultPlane::new(42, FaultProfile::hostile());
        let batch: Vec<Packet> = (0..50).map(|i| pkt(i, "amazon.com", vec![])).collect();
        let mut tap = RouterTap::with_faults(plane);
        tap.start("same");
        tap.observe_batch(batch.clone());
        tap.start("same");
        tap.observe_batch(batch);
        tap.stop();
        let caps = tap.captures();
        assert_eq!(
            format!("{:?}", caps[0].packets),
            format!("{:?}", caps[1].packets)
        );
    }

    #[test]
    fn into_captures_finalizes_open_session() {
        let mut tap = AvsTap::new();
        tap.start("open");
        tap.observe(&pkt(1, "amazon.com", vec![]));
        let caps = tap.into_captures();
        assert_eq!(caps.len(), 1);
    }
}
