//! Deterministic DNS: name → address allocation and reverse resolution.
//!
//! The paper resolves the IP addresses seen in captures back to names using
//! the DNS packets recorded alongside them. Our simulation allocates one
//! stable IPv4 address per name (from the 10.0.0.0/8 range, derived from a
//! hash of the name) and keeps the forward table so captures can be reverse-
//! resolved exactly like the paper does.

use crate::domain::Domain;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Forward and reverse DNS table with deterministic allocation.
///
/// Both directions are `BTreeMap`s so iteration (Debug dumps, future
/// exports) is in key order, independent of insertion order — the same
/// discipline the rest of the pipeline follows so that no unordered
/// collection can ever reach an output path.
#[derive(Debug, Clone, Default)]
pub struct DnsTable {
    forward: BTreeMap<Domain, Ipv4Addr>,
    reverse: BTreeMap<Ipv4Addr, Domain>,
}

impl DnsTable {
    /// Create an empty table.
    pub fn new() -> DnsTable {
        DnsTable::default()
    }

    /// Resolve a name, allocating a deterministic address on first use.
    ///
    /// The address is a pure function of the name (FNV-1a over the labels,
    /// folded into 10.x.y.z), with linear probing on the rare collision so
    /// the reverse mapping stays injective.
    pub fn resolve(&mut self, domain: &Domain) -> Ipv4Addr {
        if let Some(&ip) = self.forward.get(domain) {
            return ip;
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for b in domain.as_str().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut candidate = h;
        let ip = loop {
            let ip = Ipv4Addr::new(
                10,
                (candidate >> 16) as u8,
                (candidate >> 8) as u8,
                (candidate as u8).max(1), // avoid .0 network addresses
            );
            match self.reverse.get(&ip) {
                None => break ip,
                Some(existing) if existing == domain => break ip,
                Some(_) => candidate = candidate.wrapping_add(0x9e3779b97f4a7c15),
            }
        };
        self.forward.insert(domain.clone(), ip);
        self.reverse.insert(ip, domain.clone());
        ip
    }

    /// Look up a name without allocating.
    pub fn lookup(&self, domain: &Domain) -> Option<Ipv4Addr> {
        self.forward.get(domain).copied()
    }

    /// Reverse-resolve an address to the name that allocated it.
    pub fn reverse(&self, ip: Ipv4Addr) -> Option<&Domain> {
        self.reverse.get(&ip)
    }

    /// Number of allocated names.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn allocation_is_deterministic() {
        let mut a = DnsTable::new();
        let mut b = DnsTable::new();
        assert_eq!(
            a.resolve(&d("api.amazon.com")),
            b.resolve(&d("api.amazon.com"))
        );
    }

    #[test]
    fn allocation_is_stable_across_calls() {
        let mut t = DnsTable::new();
        let first = t.resolve(&d("megaphone.fm"));
        let second = t.resolve(&d("megaphone.fm"));
        assert_eq!(first, second);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reverse_resolution_roundtrips() {
        let mut t = DnsTable::new();
        let names = ["amazon.com", "podtrac.com", "chtbl.com", "play.podtrac.com"];
        for n in names {
            let ip = t.resolve(&d(n));
            assert_eq!(t.reverse(ip).unwrap().as_str(), n);
        }
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn distinct_names_get_distinct_ips() {
        let mut t = DnsTable::new();
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let name = format!("host{i}.example.com");
            assert!(seen.insert(t.resolve(&d(&name))), "collision for {name}");
        }
    }

    #[test]
    fn lookup_does_not_allocate() {
        let t = DnsTable::new();
        assert_eq!(t.lookup(&d("amazon.com")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn debug_dump_is_insertion_order_independent() {
        // Regression test for the HashMap → BTreeMap conversion: any
        // rendered view of the table must depend only on its contents,
        // never on the order resolutions happened in.
        let names = ["amazon.com", "podtrac.com", "chtbl.com", "megaphone.fm"];
        let mut fwd = DnsTable::new();
        for n in names {
            fwd.resolve(&d(n));
        }
        let mut rev = DnsTable::new();
        for n in names.iter().rev() {
            rev.resolve(&d(n));
        }
        assert_eq!(format!("{fwd:?}"), format!("{rev:?}"));
    }

    #[test]
    fn addresses_stay_in_ten_slash_eight() {
        let mut t = DnsTable::new();
        for i in 0..100 {
            let ip = t.resolve(&d(&format!("h{i}.test.com")));
            assert_eq!(ip.octets()[0], 10);
            assert_ne!(ip.octets()[3], 0);
        }
    }
}
