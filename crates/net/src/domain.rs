//! Validated domain names and eTLD+1 extraction.
//!
//! The paper groups contacted endpoints by registrable domain (e.g. the 11
//! subdomains of `amazon.com` in Table 1 collapse to one row). We implement
//! that grouping with an embedded subset of the public-suffix list covering
//! every suffix observed in the simulated ecosystem.

use std::fmt;

/// Public suffixes known to the embedded list. A real deployment would load
/// the full Mozilla PSL; the simulation only ever mints names under these.
const PUBLIC_SUFFIXES: &[&str] = &[
    "com", "net", "org", "io", "fm", "us", "de", "ai", "app", "dev", "tv", "info", "biz", "co.uk",
    "org.uk", "ac.uk", "com.au", "co.jp",
];

/// Errors produced when parsing a [`Domain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// The name was empty or consisted only of dots.
    Empty,
    /// A label was empty, too long, or contained an invalid character.
    BadLabel(String),
    /// The name as a whole exceeded 253 characters.
    TooLong,
    /// The name is only a public suffix (no registrable part).
    OnlySuffix,
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::Empty => write!(f, "empty domain name"),
            DomainError::BadLabel(l) => write!(f, "invalid label {l:?}"),
            DomainError::TooLong => write!(f, "domain name exceeds 253 characters"),
            DomainError::OnlySuffix => write!(f, "name is a bare public suffix"),
        }
    }
}

impl std::error::Error for DomainError {}

/// A validated, lower-cased fully-qualified domain name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Domain {
    name: String,
}

impl Domain {
    /// Parse and validate a domain name. Lower-cases the input and rejects
    /// empty/invalid labels, overlong names, and bare public suffixes.
    pub fn parse(s: &str) -> Result<Domain, DomainError> {
        let name = s.trim().trim_end_matches('.').to_ascii_lowercase();
        if name.is_empty() {
            return Err(DomainError::Empty);
        }
        if name.len() > 253 {
            return Err(DomainError::TooLong);
        }
        for label in name.split('.') {
            if label.is_empty()
                || label.len() > 63
                || label.starts_with('-')
                || label.ends_with('-')
                || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
            {
                return Err(DomainError::BadLabel(label.to_string()));
            }
        }
        let d = Domain { name };
        if d.registrable().is_none() {
            return Err(DomainError::OnlySuffix);
        }
        Ok(d)
    }

    /// The deterministic sentinel for internal names that fail validation.
    ///
    /// Simulation-minted endpoint names are valid by construction; if one
    /// ever is not (a typo in a pinned table), callers degrade by grouping
    /// that traffic under this sentinel instead of panicking mid-run. The
    /// name is never minted by the generators, so sentinel rows are
    /// unmistakable in any analysis output.
    pub fn invalid_sentinel() -> Domain {
        Domain {
            name: String::from("invalid.example.com"),
        }
    }

    /// The full name, always lower-case, no trailing dot.
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// Labels from leftmost (most specific) to rightmost (TLD).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.name.split('.')
    }

    /// The public suffix of this name, if the embedded list knows it.
    pub fn public_suffix(&self) -> Option<&str> {
        // Longest matching suffix wins (so `co.uk` beats `uk`).
        let mut best: Option<&str> = None;
        for &suffix in PUBLIC_SUFFIXES {
            if self.name == suffix || self.name.ends_with(&format!(".{suffix}")) {
                match best {
                    Some(b) if b.len() >= suffix.len() => {}
                    _ => best = Some(suffix),
                }
            }
        }
        best
    }

    /// The registrable domain (eTLD+1), e.g. `device-metrics-us-2.amazon.com`
    /// → `amazon.com`. `None` when the name *is* a public suffix.
    pub fn registrable(&self) -> Option<Domain> {
        let suffix = self.public_suffix()?;
        if self.name == suffix {
            return None;
        }
        let prefix = &self.name[..self.name.len() - suffix.len() - 1];
        let owner = prefix.rsplit('.').next()?;
        Some(Domain {
            name: format!("{owner}.{suffix}"),
        })
    }

    /// Whether `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &Domain) -> bool {
        self.name == other.name || self.name.ends_with(&format!(".{}", other.name))
    }

    /// Number of labels.
    pub fn depth(&self) -> usize {
        self.name.split('.').count()
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl std::str::FromStr for Domain {
    type Err = DomainError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Domain::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_lowercases() {
        let d = Domain::parse("Device-Metrics-US-2.Amazon.COM.").unwrap();
        assert_eq!(d.as_str(), "device-metrics-us-2.amazon.com");
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(Domain::parse(""), Err(DomainError::Empty));
        assert!(matches!(
            Domain::parse("a..b.com"),
            Err(DomainError::BadLabel(_))
        ));
        assert!(matches!(
            Domain::parse("-bad.com"),
            Err(DomainError::BadLabel(_))
        ));
        assert!(matches!(
            Domain::parse("bad-.com"),
            Err(DomainError::BadLabel(_))
        ));
        assert!(matches!(
            Domain::parse("sp ace.com"),
            Err(DomainError::BadLabel(_))
        ));
        assert_eq!(Domain::parse("com"), Err(DomainError::OnlySuffix));
        assert_eq!(Domain::parse("co.uk"), Err(DomainError::OnlySuffix));
    }

    #[test]
    fn rejects_overlong() {
        let long = format!("{}.com", "a".repeat(260));
        assert_eq!(Domain::parse(&long), Err(DomainError::TooLong));
        let long_label = format!("{}.com", "a".repeat(64));
        assert!(matches!(
            Domain::parse(&long_label),
            Err(DomainError::BadLabel(_))
        ));
    }

    #[test]
    fn registrable_extraction() {
        let cases = [
            ("device-metrics-us-2.amazon.com", "amazon.com"),
            ("amazon.com", "amazon.com"),
            ("ingestion.us-east-1.prod.arteries.alexa.a2z.com", "a2z.com"),
            ("play.podtrac.com", "podtrac.com"),
            ("pod.npr.org", "npr.org"),
            ("cdn2.voiceapps.com", "voiceapps.com"),
            ("bbc.co.uk", "bbc.co.uk"),
            ("news.bbc.co.uk", "bbc.co.uk"),
            ("traffic.omny.fm", "omny.fm"),
        ];
        for (input, want) in cases {
            assert_eq!(
                Domain::parse(input)
                    .unwrap()
                    .registrable()
                    .unwrap()
                    .as_str(),
                want
            );
        }
    }

    #[test]
    fn subdomain_relation() {
        let parent = Domain::parse("amazon.com").unwrap();
        let child = Domain::parse("api.amazon.com").unwrap();
        let other = Domain::parse("notamazon.com").unwrap();
        assert!(child.is_subdomain_of(&parent));
        assert!(parent.is_subdomain_of(&parent));
        assert!(!other.is_subdomain_of(&parent));
        // Suffix-string trap: "xamazon.com" is NOT a subdomain of "amazon.com".
        let trap = Domain::parse("xamazon.com").unwrap();
        assert!(!trap.is_subdomain_of(&parent));
    }

    #[test]
    fn labels_and_depth() {
        let d = Domain::parse("a.b.example.com").unwrap();
        assert_eq!(
            d.labels().collect::<Vec<_>>(),
            vec!["a", "b", "example", "com"]
        );
        assert_eq!(d.depth(), 4);
    }

    #[test]
    fn invalid_sentinel_is_itself_a_valid_domain() {
        let s = Domain::invalid_sentinel();
        assert_eq!(Domain::parse(s.as_str()), Ok(s.clone()));
        assert_eq!(s.registrable().unwrap().as_str(), "example.com");
    }

    #[test]
    fn display_roundtrip() {
        let d: Domain = "megaphone.fm".parse().unwrap();
        assert_eq!(d.to_string(), "megaphone.fm");
    }
}
