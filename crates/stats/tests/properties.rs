//! Property-based tests for the statistics substrate.

use alexa_stats::{
    five_number_summary, mann_whitney_u, mean, median, midranks, quantile, rank_biserial,
    Alternative, MwuMethod,
};
use proptest::prelude::*;

fn sample(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..max_len)
}

proptest! {
    #[test]
    fn mean_within_min_max(xs in sample(64)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn median_within_min_max(xs in sample(64)) {
        let m = median(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn quantiles_are_monotone(xs in sample(64), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo_q).unwrap() <= quantile(&xs, hi_q).unwrap() + 1e-9);
    }

    #[test]
    fn summary_is_ordered(xs in sample(64)) {
        let s = five_number_summary(&xs).unwrap();
        prop_assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
    }

    #[test]
    fn midranks_sum_invariant(xs in sample(64)) {
        let total: f64 = midranks(&xs).iter().sum();
        let n = xs.len() as f64;
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-6 * n.max(1.0));
    }

    #[test]
    fn shifting_up_never_decreases_effect_size(
        xs in sample(32),
        ys in sample(32),
        shift in 0.0..1e6f64,
    ) {
        let base = rank_biserial(&xs, &ys).unwrap();
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let after = rank_biserial(&shifted, &ys).unwrap();
        prop_assert!(after >= base - 1e-12);
    }

    #[test]
    fn effect_size_is_antisymmetric(xs in sample(32), ys in sample(32)) {
        let fwd = rank_biserial(&xs, &ys).unwrap();
        let rev = rank_biserial(&ys, &xs).unwrap();
        prop_assert!((fwd + rev).abs() < 1e-9);
    }

    #[test]
    fn p_values_are_probabilities(xs in sample(32), ys in sample(32)) {
        for alt in [Alternative::Greater, Alternative::Less, Alternative::TwoSided] {
            let r = mann_whitney_u(&xs, &ys, alt, MwuMethod::Auto).unwrap();
            prop_assert!((0.0..=1.0).contains(&r.p_value), "p = {}", r.p_value);
            prop_assert!((-1.0..=1.0).contains(&r.effect_size));
        }
    }

    #[test]
    fn one_sided_tails_cover_everything(xs in sample(24), ys in sample(24)) {
        // For the continuous (exact) test: P(U ≥ u) + P(U ≤ u) = 1 + P(U = u) ≥ 1.
        let g = mann_whitney_u(&xs, &ys, Alternative::Greater, MwuMethod::Exact).unwrap();
        let l = mann_whitney_u(&xs, &ys, Alternative::Less, MwuMethod::Exact).unwrap();
        prop_assert!(g.p_value + l.p_value >= 0.999);
    }

    #[test]
    fn u_statistics_partition_pairs(xs in sample(32), ys in sample(32)) {
        let r = mann_whitney_u(&xs, &ys, Alternative::TwoSided, MwuMethod::Asymptotic).unwrap();
        let expected = (xs.len() * ys.len()) as f64;
        prop_assert!((r.u1 + r.u2 - expected).abs() < 1e-6);
    }
}
