//! Statistics substrate for the `echoaudit` workspace.
//!
//! The auditing methodology of the paper rests on a small number of
//! statistical primitives, reimplemented here from scratch so the workspace
//! has no numerical dependencies:
//!
//! * **Descriptive statistics** ([`descriptive`]) — medians, means and
//!   five-number summaries used throughout Tables 5, 6, 10 and the CPM
//!   box-plot figures (Figures 3, 6, 7).
//! * **Mann–Whitney U** ([`mannwhitney`]) — the significance test used to
//!   compare bid distributions between treatment (interest) and control
//!   (vanilla / web) personas (Tables 7 and 11).
//! * **Rank-biserial effect size** ([`effect`]) — the effect-size measure the
//!   paper reports alongside p-values, with the paper's small/medium/large
//!   bands.
//! * **Classification metrics** ([`classify`]) — micro-/macro-averaged
//!   precision, recall and F1, used to validate the PoliCheck reimplementation
//!   exactly as the paper does in §7.2.3.
//!
//! * **Bootstrap intervals** ([`bootstrap`]) and **multiple-testing
//!   corrections** ([`correction`]) — robustness machinery for the audit's
//!   ablations (the paper reports raw p-values over 9 + 27 simultaneous
//!   tests).
//!
//! All functions are deterministic; the bootstrap draws its resamples from
//! an explicit seed. Degenerate inputs (empty samples, zero resamples,
//! out-of-range levels) surface as typed [`StatsError`]s — library code
//! never panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod classify;
pub mod correction;
pub mod descriptive;
pub mod effect;
pub mod error;
pub mod mannwhitney;
pub mod normal;
pub mod rank;

pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, bootstrap_median_ci, BootstrapCi};
pub use classify::{ConfusionMatrix, PrfScores};
pub use correction::{benjamini_hochberg, holm_bonferroni, significant_after};
pub use descriptive::{five_number_summary, mean, median, quantile, stddev, variance, Summary};
pub use effect::{rank_biserial, EffectMagnitude};
pub use error::StatsError;
pub use mannwhitney::{
    mann_whitney_permutation, mann_whitney_u, Alternative, MwuMethod, MwuResult,
};
pub use rank::midranks;
