//! Rank assignment with tie handling (midranks).
//!
//! Midranks are the foundation of the Mann–Whitney U test: tied observations
//! each receive the average of the ranks they jointly occupy. Bid values in
//! header-bidding logs are heavily tied (many bidders quote round CPMs), so
//! correct tie handling materially changes the test statistics in Tables 7
//! and 11.

/// Assign midranks (1-based) to a sample.
///
/// Ties receive the average of the ranks they occupy. The returned vector is
/// index-aligned with the input: `midranks(xs)[i]` is the rank of `xs[i]`.
/// NaN values sort last under IEEE total order.
pub fn midranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the extent of the tie group starting at sorted position i.
        let mut j = i + 1;
        while j < n && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        // Ranks are 1-based: positions i..j hold ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

/// Sizes of tie groups in a sample (groups of size 1 included).
///
/// Used for the tie correction term of the Mann–Whitney normal
/// approximation: `Σ (t³ − t)` over tie group sizes `t`.
pub fn tie_group_sizes(xs: &[f64]) -> Vec<usize> {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut sizes = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        sizes.push(j - i);
        i = j;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ties_is_permutation_of_1_to_n() {
        let xs = [30.0, 10.0, 20.0];
        assert_eq!(midranks(&xs), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_get_average_rank() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        assert_eq!(midranks(&xs), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_equal() {
        let xs = [5.0; 4];
        assert_eq!(midranks(&xs), vec![2.5; 4]);
    }

    #[test]
    fn empty_is_empty() {
        assert!(midranks(&[]).is_empty());
    }

    #[test]
    fn rank_sum_invariant() {
        // Sum of midranks must always be n(n+1)/2 regardless of ties.
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let total: f64 = midranks(&xs).iter().sum();
        let n = xs.len() as f64;
        assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn tie_groups() {
        let xs = [2.0, 1.0, 2.0, 2.0, 3.0];
        assert_eq!(tie_group_sizes(&xs), vec![1, 3, 1]);
    }
}
