//! Standard normal distribution functions.
//!
//! Implements the error function with the rational Chebyshev approximation of
//! W. J. Cody (as popularised by Numerical Recipes' `erfc` routine), accurate
//! to better than 1.2e-7 everywhere — more than enough for p-values reported
//! to three decimals, as in the paper's Tables 7 and 11.

/// Complementary error function, `erfc(x) = 1 − erf(x)`.
///
/// Absolute error below 1.2e-7 over the whole real line.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Numerical Recipes 6.2: erfc via a Chebyshev fit to a transformed range.
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function, `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal cumulative distribution function Φ(z).
pub fn phi(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal survival function, `1 − Φ(z)`, computed without
/// cancellation for large `z`.
pub fn phi_complement(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn phi_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-6);
        assert!((phi(1.0) - 0.8413447461).abs() < 1e-6);
        assert!((phi(-1.0) - 0.1586552539).abs() < 1e-6);
        assert!((phi(1.959963985) - 0.975).abs() < 1e-6);
        assert!((phi(2.575829304) - 0.995).abs() < 1e-6);
    }

    #[test]
    fn phi_and_complement_sum_to_one() {
        for z in [-3.0, -1.5, 0.0, 0.7, 2.2, 4.0] {
            assert!((phi(z) + phi_complement(z) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn symmetry() {
        for z in [0.1, 0.9, 1.7, 3.3] {
            assert!((phi(-z) - phi_complement(z)).abs() < 1e-9);
        }
    }

    #[test]
    fn tails_are_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 0..100 {
            let z = -5.0 + i as f64 * 0.1;
            let p = phi(z);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev);
            prev = p;
        }
    }
}
