//! Mann–Whitney U test (a.k.a. Wilcoxon rank-sum test).
//!
//! This is the significance test the paper uses throughout Section 5:
//! Table 7 tests whether each interest persona receives *higher* bids than
//! the vanilla persona (one-sided, `Alternative::Greater`), Table 11 tests
//! whether Echo interest personas differ from web interest personas
//! (two-sided). Both an exact permutation distribution (for small samples
//! without ties) and the tie-corrected normal approximation (the default,
//! matching SciPy's `mannwhitneyu(..., method="asymptotic")`) are provided.

use crate::error::StatsError;
use crate::normal::phi_complement;
use crate::rank::{midranks, tie_group_sizes};

/// Which tail(s) the alternative hypothesis covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alternative {
    /// H1: distribution of `x` is stochastically **greater** than `y`.
    Greater,
    /// H1: distribution of `x` is stochastically **less** than `y`.
    Less,
    /// H1: the distributions differ (two-sided).
    TwoSided,
}

/// How the p-value is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MwuMethod {
    /// Exact enumeration of the null distribution of U.
    ///
    /// Only valid without ties; cost is `O(n1 · n2 · (n1·n2))` so use for
    /// small samples. [`mann_whitney_u`] falls back to the asymptotic method
    /// if ties are present.
    Exact,
    /// Normal approximation with tie correction and continuity correction.
    Asymptotic,
    /// Exact when both samples are small (≤ 25) and tie-free, otherwise
    /// asymptotic — mirroring SciPy's `method="auto"`.
    Auto,
    /// Seeded Monte-Carlo permutation distribution.
    ///
    /// Only produced by [`mann_whitney_permutation`] (which needs a seed and
    /// a permutation count); [`mann_whitney_u`] resolves it to `Asymptotic`.
    Permutation,
}

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MwuResult {
    /// U statistic for the first sample (`x`).
    pub u1: f64,
    /// U statistic for the second sample (`y`); `u1 + u2 = n1 · n2`.
    pub u2: f64,
    /// The p-value under the requested alternative.
    pub p_value: f64,
    /// Rank-biserial effect size, `2·u1/(n1·n2) − 1` ∈ [−1, 1].
    ///
    /// −1, 0, 1 mean stochastic subservience, equality and dominance of `x`
    /// over `y` — the paper's reading in Table 7.
    pub effect_size: f64,
    /// The standard score actually used, when the asymptotic path ran.
    pub z: Option<f64>,
    /// Which method produced the p-value (after `Auto` resolution and any
    /// tie-forced fallback).
    pub method_used: MwuMethod,
}

/// Perform a Mann–Whitney U test of `x` against `y`.
///
/// Returns [`StatsError::EmptySample`] if either sample is empty.
///
/// ```
/// use alexa_stats::{mann_whitney_u, Alternative, MwuMethod};
/// let treated = [0.30, 0.45, 0.50, 0.61, 0.72];
/// let control = [0.05, 0.08, 0.11, 0.12, 0.20];
/// let r = mann_whitney_u(&treated, &control, Alternative::Greater, MwuMethod::Auto).unwrap();
/// assert!(r.p_value < 0.05);
/// assert!(r.effect_size > 0.9);
/// ```
pub fn mann_whitney_u(
    x: &[f64],
    y: &[f64],
    alternative: Alternative,
    method: MwuMethod,
) -> Result<MwuResult, StatsError> {
    let n1 = x.len();
    let n2 = y.len();
    if n1 == 0 || n2 == 0 {
        return Err(StatsError::EmptySample);
    }
    Ok(alexa_obs::agg_time("stats.mann_whitney_u", || {
        mwu_uninstrumented(x, y, alternative, method)
    }))
}

/// The test itself; timing happens in [`mann_whitney_u`].
fn mwu_uninstrumented(
    x: &[f64],
    y: &[f64],
    alternative: Alternative,
    method: MwuMethod,
) -> MwuResult {
    let n1 = x.len();
    let n2 = y.len();

    // Rank the pooled sample.
    let mut pooled: Vec<f64> = Vec::with_capacity(n1 + n2);
    pooled.extend_from_slice(x);
    pooled.extend_from_slice(y);
    let ranks = midranks(&pooled);
    let r1: f64 = ranks[..n1].iter().sum();
    let u1 = r1 - (n1 * (n1 + 1)) as f64 / 2.0;
    let u2 = (n1 * n2) as f64 - u1;
    let effect_size = 2.0 * u1 / (n1 * n2) as f64 - 1.0;

    let ties = tie_group_sizes(&pooled);
    let has_ties = ties.iter().any(|&t| t > 1);

    let resolved = match method {
        MwuMethod::Auto => {
            if !has_ties && n1 <= 25 && n2 <= 25 {
                MwuMethod::Exact
            } else {
                MwuMethod::Asymptotic
            }
        }
        MwuMethod::Exact if has_ties => MwuMethod::Asymptotic,
        MwuMethod::Permutation => MwuMethod::Asymptotic,
        m => m,
    };

    let (p_value, z) = match resolved {
        MwuMethod::Exact => (exact_p(u1, n1, n2, alternative), None),
        _ => {
            let (p, z) = asymptotic_p(u1, n1, n2, &ties, alternative);
            (p, Some(z))
        } // `Auto` cannot survive resolution.
    };

    MwuResult {
        u1,
        u2,
        p_value: p_value.min(1.0),
        effect_size,
        z,
        method_used: resolved,
    }
}

/// Tie-corrected normal approximation with continuity correction.
fn asymptotic_p(
    u1: f64,
    n1: usize,
    n2: usize,
    ties: &[usize],
    alternative: Alternative,
) -> (f64, f64) {
    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let n = n1f + n2f;
    let mu = n1f * n2f / 2.0;
    let tie_term: f64 = ties
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum();
    let sigma2 = n1f * n2f / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if sigma2 <= 0.0 {
        // All observations identical: no evidence against H0 in any direction.
        return (1.0, 0.0);
    }
    let sigma = sigma2.sqrt();
    // Continuity correction: shrink the deviation by 0.5 toward the mean.
    match alternative {
        Alternative::Greater => {
            let z = (u1 - mu - 0.5) / sigma;
            (phi_complement(z), z)
        }
        Alternative::Less => {
            let z = (mu - u1 - 0.5) / sigma;
            (phi_complement(z), z)
        }
        Alternative::TwoSided => {
            let z = ((u1 - mu).abs() - 0.5).max(0.0) / sigma;
            ((2.0 * phi_complement(z)).min(1.0), z)
        }
    }
}

/// Monte-Carlo permutation p-value for the Mann–Whitney U statistic.
///
/// Shuffles the pooled sample `permutations` times under the null and counts
/// permuted U statistics at least as extreme as the observed one, with the
/// standard `+1` correction so the p-value is never exactly zero. Handles
/// ties naturally (ranks are recomputed per shuffle), making it the
/// reference check for both the exact DP and the tie-corrected asymptotic
/// path.
///
/// Permutations run in fixed-size chunks with per-chunk RNGs derived from
/// `(seed, chunk index)`, distributed over all cores; the p-value is
/// identical for any worker count. Returns [`StatsError::EmptySample`] if
/// either sample is empty and [`StatsError::ZeroPermutations`] for a zero
/// permutation count.
pub fn mann_whitney_permutation(
    x: &[f64],
    y: &[f64],
    alternative: Alternative,
    permutations: usize,
    seed: u64,
) -> Result<MwuResult, StatsError> {
    let n1 = x.len();
    let n2 = y.len();
    if n1 == 0 || n2 == 0 {
        return Err(StatsError::EmptySample);
    }
    if permutations == 0 {
        return Err(StatsError::ZeroPermutations);
    }
    alexa_obs::agg_count("stats.mwu.permutations", permutations as u64);
    return Ok(alexa_obs::agg_time(
        "stats.mann_whitney_permutation",
        || permutation_uninstrumented(x, y, alternative, permutations, seed),
    ));

    /// The permutation loop itself; timing/counting happens above.
    fn permutation_uninstrumented(
        x: &[f64],
        y: &[f64],
        alternative: Alternative,
        permutations: usize,
        seed: u64,
    ) -> MwuResult {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        const CHUNK: usize = 512;

        let n1 = x.len();
        let n2 = y.len();

        let mut pooled: Vec<f64> = Vec::with_capacity(n1 + n2);
        pooled.extend_from_slice(x);
        pooled.extend_from_slice(y);
        let u_of = |sample: &[f64]| {
            let ranks = midranks(sample);
            let r1: f64 = ranks[..n1].iter().sum();
            r1 - (n1 * (n1 + 1)) as f64 / 2.0
        };
        let u1 = u_of(&pooled);
        let u2 = (n1 * n2) as f64 - u1;
        let mu = (n1 * n2) as f64 / 2.0;

        let chunks: Vec<usize> = (0..permutations.div_ceil(CHUNK)).collect();
        let extreme_counts = alexa_exec::par_map(None, chunks, |c, _| {
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(seed ^ 0x6d77755f ^ ((c as u64 + 1) << 24));
            let count = CHUNK.min(permutations - c * CHUNK);
            let mut shuffled = pooled.clone();
            let mut extreme = 0usize;
            for _ in 0..count {
                shuffled.shuffle(&mut rng);
                let u = u_of(&shuffled);
                let hit = match alternative {
                    Alternative::Greater => u >= u1,
                    Alternative::Less => u <= u1,
                    Alternative::TwoSided => (u - mu).abs() >= (u1 - mu).abs(),
                };
                if hit {
                    extreme += 1;
                }
            }
            extreme
        });
        let extreme: usize = extreme_counts.into_iter().sum();
        let p_value = (extreme + 1) as f64 / (permutations + 1) as f64;

        MwuResult {
            u1,
            u2,
            p_value: p_value.min(1.0),
            effect_size: 2.0 * u1 / (n1 * n2) as f64 - 1.0,
            z: None,
            method_used: MwuMethod::Permutation,
        }
    }
}

/// Exact p-value by enumerating the tie-free null distribution of U.
///
/// `count[u]` after the DP equals the number of arrangements of ranks giving
/// statistic `u`; the recurrence is the classic
/// `N(n1, n2, u) = N(n1−1, n2, u−n2) + N(n1, n2−1, u)`.
fn exact_p(u1: f64, n1: usize, n2: usize, alternative: Alternative) -> f64 {
    let max_u = n1 * n2;
    // N(m, n, u): arrangements of m x's and n y's with statistic u. Condition
    // on the largest pooled value: if it is an x it exceeds all n y's
    // (contributing n), otherwise it contributes nothing:
    //   N(m, n, u) = N(m−1, n, u−n) + N(m, n−1, u)
    // dp[n][u] holds N(m, n, u) for the current m.
    let mut dp = vec![vec![0.0f64; max_u + 1]; n2 + 1];
    for row in dp.iter_mut() {
        row[0] = 1.0; // m = 0: only u = 0 is possible.
    }
    for _m in 1..=n1 {
        let mut next = vec![vec![0.0f64; max_u + 1]; n2 + 1];
        next[0][0] = 1.0; // no y's: u must be 0.
        for n in 1..=n2 {
            for u in 0..=max_u {
                let from_x = if u >= n { dp[n][u - n] } else { 0.0 };
                next[n][u] = from_x + next[n - 1][u];
            }
        }
        dp = next;
    }
    let counts = &dp[n2];
    let total: f64 = counts.iter().sum();
    let u_obs = u1.round() as usize; // tie-free U is integral
    let p_ge: f64 = counts[u_obs..].iter().sum::<f64>() / total;
    let p_le: f64 = counts[..=u_obs].iter().sum::<f64>() / total;
    match alternative {
        Alternative::Greater => p_ge,
        Alternative::Less => p_le,
        Alternative::TwoSided => (2.0 * p_ge.min(p_le)).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_are_typed_errors() {
        assert_eq!(
            mann_whitney_u(&[], &[1.0], Alternative::TwoSided, MwuMethod::Auto),
            Err(crate::StatsError::EmptySample)
        );
        assert_eq!(
            mann_whitney_u(&[1.0], &[], Alternative::TwoSided, MwuMethod::Auto),
            Err(crate::StatsError::EmptySample)
        );
    }

    #[test]
    fn u_statistics_sum_to_n1_n2() {
        let x = [1.0, 5.0, 7.0, 3.0];
        let y = [2.0, 6.0, 4.0];
        let r = mann_whitney_u(&x, &y, Alternative::TwoSided, MwuMethod::Auto).unwrap();
        assert!((r.u1 + r.u2 - 12.0).abs() < 1e-9);
    }

    #[test]
    fn clear_separation_is_significant_one_sided() {
        let x = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let r = mann_whitney_u(&x, &y, Alternative::Greater, MwuMethod::Exact).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
        assert!((r.effect_size - 1.0).abs() < 1e-9);
        // Full dominance: u1 = n1*n2.
        assert_eq!(r.u1, 64.0);
    }

    #[test]
    fn identical_samples_not_significant() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = mann_whitney_u(&x, &x, Alternative::TwoSided, MwuMethod::Asymptotic).unwrap();
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
        assert!(r.effect_size.abs() < 1e-9);
    }

    #[test]
    fn exact_matches_scipy_reference() {
        // scipy.stats.mannwhitneyu([19,22,16,29,24], [20,11,17,12], alternative="greater")
        // => U = 17, p = 0.05555...
        let x = [19.0, 22.0, 16.0, 29.0, 24.0];
        let y = [20.0, 11.0, 17.0, 12.0];
        let r = mann_whitney_u(&x, &y, Alternative::Greater, MwuMethod::Exact).unwrap();
        assert_eq!(r.u1, 17.0);
        assert!((r.p_value - 0.055555555).abs() < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn exact_two_sided_matches_reference() {
        // scipy: mannwhitneyu([1,2,3], [4,5,6], alternative="two-sided") => U=0, p=0.1
        let r = mann_whitney_u(
            &[1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0],
            Alternative::TwoSided,
            MwuMethod::Exact,
        )
        .unwrap();
        assert_eq!(r.u1, 0.0);
        assert!((r.p_value - 0.1).abs() < 1e-9, "p = {}", r.p_value);
    }

    #[test]
    fn asymptotic_close_to_exact_moderate_n() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64) * 1.7 + 3.0).collect();
        let y: Vec<f64> = (0..20).map(|i| (i as f64) * 1.3).collect();
        let e = mann_whitney_u(&x, &y, Alternative::Greater, MwuMethod::Exact).unwrap();
        let a = mann_whitney_u(&x, &y, Alternative::Greater, MwuMethod::Asymptotic).unwrap();
        assert!(
            (e.p_value - a.p_value).abs() < 0.01,
            "exact {} vs asymptotic {}",
            e.p_value,
            a.p_value
        );
    }

    #[test]
    fn ties_force_asymptotic() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [2.0, 2.0, 4.0];
        let r = mann_whitney_u(&x, &y, Alternative::TwoSided, MwuMethod::Exact).unwrap();
        assert_eq!(r.method_used, MwuMethod::Asymptotic);
    }

    #[test]
    fn all_constant_degenerate() {
        let x = [2.0; 5];
        let y = [2.0; 6];
        let r = mann_whitney_u(&x, &y, Alternative::Greater, MwuMethod::Asymptotic).unwrap();
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn less_is_mirror_of_greater() {
        let x = [5.0, 6.0, 7.0, 8.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let g = mann_whitney_u(&x, &y, Alternative::Greater, MwuMethod::Exact).unwrap();
        let l = mann_whitney_u(&y, &x, Alternative::Less, MwuMethod::Exact).unwrap();
        assert!((g.p_value - l.p_value).abs() < 1e-12);
    }

    #[test]
    fn permutation_close_to_exact() {
        let x = [19.0, 22.0, 16.0, 29.0, 24.0];
        let y = [20.0, 11.0, 17.0, 12.0];
        let e = mann_whitney_u(&x, &y, Alternative::Greater, MwuMethod::Exact).unwrap();
        let p = mann_whitney_permutation(&x, &y, Alternative::Greater, 20_000, 5).unwrap();
        assert_eq!(p.method_used, MwuMethod::Permutation);
        assert_eq!(p.u1, e.u1);
        assert!(
            (p.p_value - e.p_value).abs() < 0.01,
            "exact {} vs permutation {}",
            e.p_value,
            p.p_value
        );
    }

    #[test]
    fn permutation_deterministic_per_seed_and_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0, 5.0, 5.0];
        let y = [2.0, 2.0, 4.0, 5.0];
        let a = mann_whitney_permutation(&x, &y, Alternative::TwoSided, 3_000, 11).unwrap();
        let b = mann_whitney_permutation(&x, &y, Alternative::TwoSided, 3_000, 11).unwrap();
        assert_eq!(a, b);
        let c = mann_whitney_permutation(&x, &y, Alternative::TwoSided, 3_000, 12).unwrap();
        assert!(a.p_value > 0.0 && a.p_value <= 1.0);
        // Different seeds may agree by chance on p, but the asymptotic path
        // should be in the same neighbourhood.
        let asym = mann_whitney_u(&x, &y, Alternative::TwoSided, MwuMethod::Asymptotic).unwrap();
        assert!(
            (a.p_value - asym.p_value).abs() < 0.1,
            "{} vs {}",
            a.p_value,
            asym.p_value
        );
        let _ = c;
    }

    #[test]
    fn permutation_degenerate_inputs_are_typed_errors() {
        assert_eq!(
            mann_whitney_permutation(&[], &[1.0], Alternative::Greater, 100, 1),
            Err(crate::StatsError::EmptySample)
        );
        assert_eq!(
            mann_whitney_permutation(&[1.0], &[], Alternative::Greater, 100, 1),
            Err(crate::StatsError::EmptySample)
        );
        assert_eq!(
            mann_whitney_permutation(&[1.0], &[2.0], Alternative::Greater, 0, 1),
            Err(crate::StatsError::ZeroPermutations)
        );
    }

    #[test]
    fn effect_size_sign_tracks_direction() {
        let hi = [10.0, 12.0, 14.0];
        let lo = [1.0, 2.0, 3.0];
        let up = mann_whitney_u(&hi, &lo, Alternative::TwoSided, MwuMethod::Auto).unwrap();
        let down = mann_whitney_u(&lo, &hi, Alternative::TwoSided, MwuMethod::Auto).unwrap();
        assert!(up.effect_size > 0.0);
        assert!(down.effect_size < 0.0);
        assert!((up.effect_size + down.effect_size).abs() < 1e-12);
    }
}
