//! Multiple-testing corrections.
//!
//! Table 11 runs 27 simultaneous Mann–Whitney tests and Table 7 runs nine;
//! the paper reports raw p-values. These corrections let the audit check
//! whether its conclusions survive family-wise (Holm–Bonferroni) or
//! false-discovery-rate (Benjamini–Hochberg) control — one of the
//! DESIGN.md ablations.

/// Holm–Bonferroni step-down adjusted p-values, index-aligned with the
/// input. Adjusted values are clamped to [0, 1] and made monotone.
pub fn holm_bonferroni(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p_values[a].total_cmp(&p_values[b]));
    let mut adjusted = vec![0.0; m];
    let mut running_max = 0.0f64;
    for (rank, &idx) in order.iter().enumerate() {
        let adj = ((m - rank) as f64 * p_values[idx]).min(1.0);
        running_max = running_max.max(adj);
        adjusted[idx] = running_max;
    }
    adjusted
}

/// Benjamini–Hochberg step-up adjusted p-values (FDR), index-aligned.
pub fn benjamini_hochberg(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p_values[a].total_cmp(&p_values[b]));
    let mut adjusted = vec![0.0; m];
    let mut running_min = 1.0f64;
    for rank in (0..m).rev() {
        let idx = order[rank];
        let adj = (m as f64 / (rank + 1) as f64 * p_values[idx]).min(1.0);
        running_min = running_min.min(adj);
        adjusted[idx] = running_min;
    }
    adjusted
}

/// Indices significant at `alpha` after a correction.
pub fn significant_after(adjusted: &[f64], alpha: f64) -> Vec<usize> {
    adjusted
        .iter()
        .enumerate()
        .filter(|(_, &p)| p < alpha)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(holm_bonferroni(&[]).is_empty());
        assert!(benjamini_hochberg(&[]).is_empty());
    }

    #[test]
    fn single_p_unchanged() {
        assert_eq!(holm_bonferroni(&[0.03]), vec![0.03]);
        assert_eq!(benjamini_hochberg(&[0.03]), vec![0.03]);
    }

    #[test]
    fn holm_known_example() {
        // Classic example: p = [0.01, 0.04, 0.03, 0.005], m = 4.
        // Sorted: 0.005*4=0.02, 0.01*3=0.03, 0.03*2=0.06, 0.04*1=0.04→max 0.06.
        let adj = holm_bonferroni(&[0.01, 0.04, 0.03, 0.005]);
        assert!((adj[3] - 0.02).abs() < 1e-12);
        assert!((adj[0] - 0.03).abs() < 1e-12);
        assert!((adj[2] - 0.06).abs() < 1e-12);
        assert!((adj[1] - 0.06).abs() < 1e-12); // monotone enforcement
    }

    #[test]
    fn bh_known_example() {
        // p = [0.01, 0.02, 0.03, 0.04], m = 4:
        // adj = [0.04, 0.04, 0.04, 0.04].
        let adj = benjamini_hochberg(&[0.01, 0.02, 0.03, 0.04]);
        for a in adj {
            assert!((a - 0.04).abs() < 1e-12);
        }
    }

    #[test]
    fn corrections_never_decrease_p() {
        let ps = [0.001, 0.2, 0.04, 0.6, 0.013];
        for adj in [holm_bonferroni(&ps), benjamini_hochberg(&ps)] {
            for (raw, a) in ps.iter().zip(adj) {
                assert!(a >= *raw - 1e-15);
                assert!(a <= 1.0);
            }
        }
    }

    #[test]
    fn holm_is_at_least_as_strict_as_bh() {
        let ps = [0.001, 0.2, 0.04, 0.6, 0.013, 0.05, 0.07];
        let h = holm_bonferroni(&ps);
        let b = benjamini_hochberg(&ps);
        for (hh, bb) in h.iter().zip(&b) {
            assert!(hh >= bb, "holm {hh} < bh {bb}");
        }
    }

    #[test]
    fn significance_helper() {
        let adj = [0.01, 0.2, 0.04];
        assert_eq!(significant_after(&adj, 0.05), vec![0, 2]);
        assert!(significant_after(&adj, 0.001).is_empty());
    }
}
