//! Seeded bootstrap confidence intervals.
//!
//! The paper reports point medians/means for heavily skewed CPM samples
//! (Tables 5, 6, 10). Percentile-bootstrap intervals quantify how stable
//! those points are — used by the audit's robustness checks and the
//! ablation benches. Resampling is fully seeded for reproducibility.

use crate::error::StatsError;
use alexa_exec::par_map;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Resamples per parallel chunk. Fixed (never derived from the worker
/// count), so the chunk decomposition — and therefore every chunk's derived
/// RNG stream — is identical no matter how many threads execute it.
const CHUNK: usize = 256;

/// A two-sided confidence interval for a resampled statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
}

impl BootstrapCi {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a value lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }
}

/// Percentile bootstrap for an arbitrary statistic.
///
/// Degenerate inputs are typed errors: [`StatsError::EmptySample`] for an
/// empty sample, [`StatsError::ZeroResamples`] for a zero resample count,
/// and [`StatsError::InvalidLevel`] for a level outside the open interval
/// (0, 1) — a 0% interval is degenerate and a 100% interval is unbounded,
/// so both endpoints are excluded.
///
/// Resampling runs in fixed-size chunks, each with an RNG derived from
/// `(seed, chunk index)`, distributed over all available cores — the result
/// is identical to a sequential evaluation of the same chunks.
pub fn bootstrap_ci<F>(
    xs: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi, StatsError>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    if xs.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if resamples == 0 {
        return Err(StatsError::ZeroResamples);
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidLevel(level));
    }
    alexa_obs::agg_count("stats.bootstrap.resamples", resamples as u64);
    Ok(alexa_obs::agg_time("stats.bootstrap_ci", || {
        bootstrap_ci_uninstrumented(xs, statistic, resamples, level, seed)
    }))
}

/// The resampling loop itself; timing/counting happens in [`bootstrap_ci`].
fn bootstrap_ci_uninstrumented<F>(
    xs: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> BootstrapCi
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let estimate = statistic(xs);
    let chunks: Vec<usize> = (0..resamples.div_ceil(CHUNK)).collect();
    let chunked = par_map(None, chunks, |c, _| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x626f6f74 ^ ((c as u64 + 1) << 24));
        let count = CHUNK.min(resamples - c * CHUNK);
        let mut buf = vec![0.0; xs.len()];
        let mut stats = Vec::with_capacity(count);
        for _ in 0..count {
            for slot in buf.iter_mut() {
                *slot = xs[rng.gen_range(0..xs.len())];
            }
            stats.push(statistic(&buf));
        }
        stats
    });
    let mut stats: Vec<f64> = chunked.into_iter().flatten().collect();
    stats.sort_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::descriptive::quantile_sorted(&stats, alpha);
    let hi = crate::descriptive::quantile_sorted(&stats, 1.0 - alpha);
    BootstrapCi {
        estimate,
        lo,
        hi,
        level,
    }
}

/// Bootstrap CI for the sample median.
pub fn bootstrap_median_ci(
    xs: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi, StatsError> {
    bootstrap_ci(
        xs,
        |s| crate::descriptive::median(s).unwrap_or(f64::NAN),
        resamples,
        level,
        seed,
    )
}

/// Bootstrap CI for the sample mean.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi, StatsError> {
    bootstrap_ci(
        xs,
        |s| crate::descriptive::mean(s).unwrap_or(f64::NAN),
        resamples,
        level,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (rng.gen_range(-1.0..1.0f64) * 2.0).exp())
            .collect()
    }

    #[test]
    fn interval_brackets_estimate() {
        let xs = skewed_sample(200, 1);
        let ci = bootstrap_median_ci(&xs, 500, 0.95, 7).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.contains(ci.estimate));
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let xs = skewed_sample(100, 2);
        let a = bootstrap_mean_ci(&xs, 300, 0.9, 11).unwrap();
        let b = bootstrap_mean_ci(&xs, 300, 0.9, 11).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_mean_ci(&xs, 300, 0.9, 12).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn higher_level_widens_interval() {
        let xs = skewed_sample(100, 3);
        let narrow = bootstrap_median_ci(&xs, 800, 0.80, 5).unwrap();
        let wide = bootstrap_median_ci(&xs, 800, 0.99, 5).unwrap();
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn more_data_tightens_interval() {
        let small = bootstrap_mean_ci(&skewed_sample(30, 4), 500, 0.95, 5).unwrap();
        let large = bootstrap_mean_ci(&skewed_sample(3000, 4), 500, 0.95, 5).unwrap();
        assert!(large.width() < small.width());
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        use crate::StatsError;
        assert_eq!(
            bootstrap_median_ci(&[], 100, 0.95, 1),
            Err(StatsError::EmptySample)
        );
        assert_eq!(
            bootstrap_median_ci(&[1.0], 0, 0.95, 1),
            Err(StatsError::ZeroResamples)
        );
        assert_eq!(
            bootstrap_median_ci(&[1.0], 100, 1.5, 1),
            Err(StatsError::InvalidLevel(1.5))
        );
        assert_eq!(
            bootstrap_median_ci(&[1.0], 100, 0.0, 1),
            Err(StatsError::InvalidLevel(0.0))
        );
        // Both endpoints of (0, 1) are excluded; interior values near them
        // are accepted.
        assert!(bootstrap_median_ci(&[1.0], 100, 1.0, 1).is_err());
        assert!(bootstrap_median_ci(&[1.0], 100, -0.5, 1).is_err());
        assert!(bootstrap_median_ci(&[1.0], 100, 0.0001, 1).is_ok());
        assert!(bootstrap_median_ci(&[1.0], 100, 0.9999, 1).is_ok());
    }

    #[test]
    fn chunked_resampling_spans_chunk_boundaries() {
        // Resample counts straddling the parallel chunk size must all be
        // deterministic and well-formed.
        let xs = skewed_sample(60, 9);
        for resamples in [1, 255, 256, 257, 1000] {
            let a = bootstrap_mean_ci(&xs, resamples, 0.9, 3).unwrap();
            let b = bootstrap_mean_ci(&xs, resamples, 0.9, 3).unwrap();
            assert_eq!(a, b, "{resamples} resamples not deterministic");
            assert!(a.lo <= a.hi);
        }
    }

    #[test]
    fn constant_sample_has_zero_width() {
        let xs = [3.0; 50];
        let ci = bootstrap_mean_ci(&xs, 200, 0.95, 1).unwrap();
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
        assert_eq!(ci.estimate, 3.0);
    }
}
