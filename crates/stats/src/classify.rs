//! Multi-class classification metrics.
//!
//! Used to validate the PoliCheck reimplementation the way the paper does in
//! §7.2.3: visually label a subset of data flows, compare against the
//! automated classification, and report micro- and macro-averaged precision,
//! recall and F1 (the paper reports 87.41% micro-averaged and
//! 93.96 / 77.85 / 85.15% macro-averaged P/R/F1).

use std::collections::BTreeMap;

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrfScores {
    /// Precision: TP / (TP + FP).
    pub precision: f64,
    /// Recall: TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl PrfScores {
    fn from_counts(tp: f64, fp: f64, fne: f64) -> PrfScores {
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fne > 0.0 { tp / (tp + fne) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        PrfScores {
            precision,
            recall,
            f1,
        }
    }
}

/// A multi-class confusion matrix over string-labelled classes.
///
/// Rows are ground-truth labels, columns are predicted labels. Classes are
/// discovered dynamically; iteration order is deterministic (BTreeMap).
#[derive(Debug, Clone, Default)]
pub struct ConfusionMatrix {
    cells: BTreeMap<(String, String), usize>,
    classes: std::collections::BTreeSet<String>,
}

impl ConfusionMatrix {
    /// Create an empty matrix.
    pub fn new() -> ConfusionMatrix {
        ConfusionMatrix::default()
    }

    /// Record one observation with ground truth `actual` and prediction
    /// `predicted`.
    pub fn record(&mut self, actual: &str, predicted: &str) {
        self.classes.insert(actual.to_string());
        self.classes.insert(predicted.to_string());
        *self
            .cells
            .entry((actual.to_string(), predicted.to_string()))
            .or_insert(0) += 1;
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> usize {
        self.cells.values().sum()
    }

    /// Number of observations where prediction matched ground truth.
    pub fn correct(&self) -> usize {
        self.cells
            .iter()
            .filter(|((a, p), _)| a == p)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Overall accuracy. For single-label multi-class classification this
    /// equals micro-averaged precision, recall and F1.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        self.correct() as f64 / t as f64
    }

    /// All classes seen, in deterministic order.
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.classes.iter().map(String::as_str)
    }

    /// Per-class one-vs-rest counts: (TP, FP, FN).
    pub fn class_counts(&self, class: &str) -> (usize, usize, usize) {
        let mut tp = 0;
        let mut fp = 0;
        let mut fne = 0;
        for ((actual, predicted), &count) in &self.cells {
            let a = actual == class;
            let p = predicted == class;
            match (a, p) {
                (true, true) => tp += count,
                (false, true) => fp += count,
                (true, false) => fne += count,
                (false, false) => {}
            }
        }
        (tp, fp, fne)
    }

    /// Precision/recall/F1 for a single class (one-vs-rest).
    pub fn class_scores(&self, class: &str) -> PrfScores {
        let (tp, fp, fne) = self.class_counts(class);
        PrfScores::from_counts(tp as f64, fp as f64, fne as f64)
    }

    /// Micro-averaged P/R/F1: pool TP/FP/FN over all classes.
    ///
    /// For single-label classification all three equal accuracy.
    pub fn micro_scores(&self) -> PrfScores {
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut fne = 0.0;
        for c in self.classes.iter() {
            let (t, f, n) = self.class_counts(c);
            tp += t as f64;
            fp += f as f64;
            fne += n as f64;
        }
        PrfScores::from_counts(tp, fp, fne)
    }

    /// Macro-averaged P/R/F1: unweighted mean of per-class scores.
    pub fn macro_scores(&self) -> PrfScores {
        let k = self.classes.len();
        if k == 0 {
            return PrfScores {
                precision: 0.0,
                recall: 0.0,
                f1: 0.0,
            };
        }
        let mut precision = 0.0;
        let mut recall = 0.0;
        let mut f1 = 0.0;
        for c in self.classes.iter() {
            let s = self.class_scores(c);
            precision += s.precision;
            recall += s.recall;
            f1 += s.f1;
        }
        let kf = k as f64;
        PrfScores {
            precision: precision / kf,
            recall: recall / kf,
            f1: f1 / kf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new();
        // 3 classes; deliberately imbalanced.
        for _ in 0..8 {
            m.record("clear", "clear");
        }
        for _ in 0..2 {
            m.record("clear", "vague");
        }
        for _ in 0..5 {
            m.record("vague", "vague");
        }
        m.record("vague", "omitted");
        for _ in 0..4 {
            m.record("omitted", "omitted");
        }
        m
    }

    #[test]
    fn totals() {
        let m = sample_matrix();
        assert_eq!(m.total(), 20);
        assert_eq!(m.correct(), 17);
        assert!((m.accuracy() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn micro_equals_accuracy_for_single_label() {
        let m = sample_matrix();
        let micro = m.micro_scores();
        assert!((micro.precision - m.accuracy()).abs() < 1e-12);
        assert!((micro.recall - m.accuracy()).abs() < 1e-12);
        assert!((micro.f1 - m.accuracy()).abs() < 1e-12);
    }

    #[test]
    fn per_class_counts() {
        let m = sample_matrix();
        // "vague": TP=5, FP=2 (clear→vague), FN=1 (vague→omitted).
        assert_eq!(m.class_counts("vague"), (5, 2, 1));
        let s = m.class_scores("vague");
        assert!((s.precision - 5.0 / 7.0).abs() < 1e-12);
        assert!((s.recall - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn macro_is_mean_of_classes() {
        let m = sample_matrix();
        let macro_s = m.macro_scores();
        let mean_p: f64 = m
            .classes()
            .map(|c| m.class_scores(c).precision)
            .sum::<f64>()
            / 3.0;
        assert!((macro_s.precision - mean_p).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier() {
        let mut m = ConfusionMatrix::new();
        m.record("a", "a");
        m.record("b", "b");
        let s = m.macro_scores();
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn empty_matrix_is_zeroes() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.macro_scores().f1, 0.0);
    }

    #[test]
    fn unseen_predicted_class_still_counted() {
        let mut m = ConfusionMatrix::new();
        m.record("a", "b"); // class "b" never appears as ground truth
        assert_eq!(m.class_counts("b"), (0, 1, 0));
        assert_eq!(m.class_scores("b").precision, 0.0);
    }
}
