//! Rank-biserial effect size and the paper's magnitude bands.
//!
//! The paper reports the rank-biserial coefficient alongside each
//! Mann–Whitney p-value in Table 7 and reads magnitudes with the bands
//! 0.11–0.28 (small), 0.28–0.43 (medium), ≥ 0.43 (large).

use crate::mannwhitney::{mann_whitney_u, Alternative, MwuMethod};

/// Magnitude bands for the rank-biserial coefficient used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectMagnitude {
    /// |r| < 0.11 — effectively no stochastic difference.
    Negligible,
    /// 0.11 ≤ |r| < 0.28.
    Small,
    /// 0.28 ≤ |r| < 0.43.
    Medium,
    /// |r| ≥ 0.43.
    Large,
}

impl EffectMagnitude {
    /// Classify a rank-biserial coefficient into the paper's bands.
    pub fn classify(r: f64) -> EffectMagnitude {
        let a = r.abs();
        if a < 0.11 {
            EffectMagnitude::Negligible
        } else if a < 0.28 {
            EffectMagnitude::Small
        } else if a < 0.43 {
            EffectMagnitude::Medium
        } else {
            EffectMagnitude::Large
        }
    }
}

impl std::fmt::Display for EffectMagnitude {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EffectMagnitude::Negligible => "negligible",
            EffectMagnitude::Small => "small",
            EffectMagnitude::Medium => "medium",
            EffectMagnitude::Large => "large",
        };
        f.write_str(s)
    }
}

/// Rank-biserial correlation between two samples: `2·U1/(n1·n2) − 1`.
///
/// Ranges over [−1, 1]; −1, 0, and 1 indicate stochastic subservience,
/// equality, and dominance of `x` over `y`. Returns
/// [`StatsError::EmptySample`](crate::StatsError::EmptySample) if either
/// sample is empty.
pub fn rank_biserial(x: &[f64], y: &[f64]) -> Result<f64, crate::StatsError> {
    mann_whitney_u(x, y, Alternative::TwoSided, MwuMethod::Asymptotic).map(|r| r.effect_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_plus_one() {
        assert!((rank_biserial(&[4.0, 5.0, 6.0], &[1.0, 2.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subservience_is_minus_one() {
        assert!((rank_biserial(&[1.0, 2.0], &[3.0, 4.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_is_zero() {
        assert!(
            rank_biserial(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0])
                .unwrap()
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn empty_is_a_typed_error() {
        assert_eq!(
            rank_biserial(&[], &[1.0]),
            Err(crate::StatsError::EmptySample)
        );
    }

    #[test]
    fn bands_match_paper_thresholds() {
        assert_eq!(EffectMagnitude::classify(0.05), EffectMagnitude::Negligible);
        assert_eq!(EffectMagnitude::classify(0.11), EffectMagnitude::Small);
        assert_eq!(EffectMagnitude::classify(0.2), EffectMagnitude::Small);
        assert_eq!(EffectMagnitude::classify(0.28), EffectMagnitude::Medium);
        assert_eq!(EffectMagnitude::classify(0.354), EffectMagnitude::Medium); // Connected Car, Table 7
        assert_eq!(EffectMagnitude::classify(0.43), EffectMagnitude::Large);
        assert_eq!(EffectMagnitude::classify(-0.5), EffectMagnitude::Large);
    }

    #[test]
    fn display_strings() {
        assert_eq!(EffectMagnitude::Medium.to_string(), "medium");
    }
}
