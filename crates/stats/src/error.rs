//! Typed errors for the statistics entry points.
//!
//! The library used to signal degenerate inputs with `Option`, which pushed
//! callers toward `.expect(...)` and lost *why* a test could not run. Every
//! public entry point now returns `Result<_, StatsError>` so the audit
//! pipeline can record the reason (e.g. in a "skipped" table row) without a
//! panic path anywhere in library code.

use std::fmt;

/// Why a statistic could not be computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsError {
    /// An input sample was empty.
    EmptySample,
    /// A bootstrap was requested with zero resamples.
    ZeroResamples,
    /// A permutation test was requested with zero permutations.
    ZeroPermutations,
    /// A confidence level outside the open interval (0, 1): a 0% interval
    /// is degenerate and a 100% interval is unbounded.
    InvalidLevel(f64),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "empty sample"),
            StatsError::ZeroResamples => write!(f, "bootstrap needs at least one resample"),
            StatsError::ZeroPermutations => {
                write!(f, "permutation test needs at least one permutation")
            }
            StatsError::InvalidLevel(l) => {
                write!(
                    f,
                    "confidence level {l} is outside the open interval (0, 1)"
                )
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert_eq!(StatsError::EmptySample.to_string(), "empty sample");
        assert!(StatsError::InvalidLevel(1.5).to_string().contains("1.5"));
    }
}
