//! Descriptive statistics: means, medians, quantiles and summaries.
//!
//! These are the primitives behind the bid-value tables (Tables 5, 6, 10)
//! and the box-plot figures (Figures 3, 6, 7). All quantiles use linear
//! interpolation between order statistics (the "type 7" estimator, matching
//! NumPy's default, which the paper's analysis scripts used).

/// Arithmetic mean of a sample. Returns `None` for an empty sample.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample median (the 0.5 quantile). Returns `None` for an empty sample.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile (type 7). `q` must be within `[0, 1]`.
///
/// Returns `None` if the sample is empty or `q` is out of range / not finite.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile of an already ascending-sorted slice. An empty slice yields
/// `NaN` (every in-crate caller guards for non-emptiness first).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let Some(&first) = sorted.first() else {
        return f64::NAN;
    };
    if n == 1 {
        return first;
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = (pos.ceil() as usize).min(n - 1);
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Unbiased (n−1 denominator) sample variance. `None` if fewer than 2 points.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / (xs.len() - 1) as f64)
}

/// Sample standard deviation. `None` if fewer than 2 points.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// A five-number summary plus mean — everything a box plot needs.
///
/// The paper's Figures 3, 6 and 7 are CPM box plots whose boxes span the
/// interquartile range with the median as a solid line and the mean as a
/// dotted line; this struct carries exactly that data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Smallest observation.
    pub min: f64,
    /// First quartile (0.25 quantile).
    pub q1: f64,
    /// Median (0.5 quantile).
    pub median: f64,
    /// Third quartile (0.75 quantile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Interquartile range (`q3 − q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Compute a [`Summary`] for a sample. Returns `None` for an empty sample.
pub fn five_number_summary(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let (&min, &max) = (sorted.first()?, sorted.last()?);
    Some(Summary {
        n: sorted.len(),
        min,
        q1: quantile_sorted(&sorted, 0.25),
        median: quantile_sorted(&sorted, 0.5),
        q3: quantile_sorted(&sorted, 0.75),
        max,
        mean: mean(&sorted)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn mean_of_constants() {
        assert_eq!(mean(&[3.0, 3.0, 3.0]), Some(3.0));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn quantile_bounds() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 1.5), None);
        assert_eq!(quantile(&xs, -0.1), None);
    }

    #[test]
    fn quantile_interpolates() {
        // numpy.quantile([1,2,3,4], 0.25) == 1.75 with the type-7 estimator.
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn variance_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // Known example: population variance 4, sample variance 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((stddev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), None);
    }

    #[test]
    fn summary_matches_parts() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let s = five_number_summary(&xs).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn summary_single_element() {
        let s = five_number_summary(&[7.5]).unwrap();
        assert_eq!(s.min, 7.5);
        assert_eq!(s.q1, 7.5);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.q3, 7.5);
        assert_eq!(s.max, 7.5);
    }
}
