//! Content-hash incremental cache for per-file summaries.
//!
//! The per-file work (lexing, per-file lints, symbol extraction) dominates
//! the pass, and none of it depends on other files — so it caches cleanly
//! under a FNV-1a hash of the file content. The cross-file semantic lints
//! (AS01–AS04) are *always* recomputed from the full summary set, which is
//! what makes the cache sound: editing a callee file changes that file's
//! hash, its fresh summary carries the new taint sources, and the backward
//! propagation re-taints every cached caller.
//!
//! One cache file (`summaries.v1.txt` under `target/analyzer/`) holds every
//! summary, guarded by a **global key** over the analyzer version, the
//! configuration and the name registries: any change to lint semantics
//! drops the whole cache. The format is line-oriented and strict — any
//! malformed line invalidates the entire cache (a miss, never an error).

use std::collections::BTreeMap;
use std::path::Path;

use crate::config::Config;
use crate::findings::{Finding, Severity};
use crate::lexer::AllowDirective;
use crate::lints;
use crate::registry::Registry;
use crate::symbols::{CallKind, CallRef, FieldSym, FileSummary, FnSym, SourceHit, StructSym};

/// Bumped when the summary shape or serialization changes.
const CACHE_FORMAT: &str = "v1";

/// File name of the cache inside the cache directory.
pub const CACHE_FILE: &str = "summaries.v1.txt";

/// FNV-1a over a byte slice — the content hash and the global key hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The global invalidation key: analyzer version + full configuration +
/// both name registries. Any difference ⇒ the whole cache is a miss.
pub fn global_key(config: &Config, registry: &Registry) -> u64 {
    let blob = format!(
        "{CACHE_FORMAT}|{}|{config:?}|{registry:?}",
        env!("CARGO_PKG_VERSION")
    );
    fnv1a(blob.as_bytes())
}

/// Load the cached summaries keyed by relative path. Any mismatch (missing
/// file, stale key, malformed line) returns an empty map — a full miss.
pub fn load(dir: &Path, key: u64) -> BTreeMap<String, FileSummary> {
    match std::fs::read_to_string(dir.join(CACHE_FILE)) {
        Ok(src) => parse(&src, key).unwrap_or_default(),
        Err(_) => BTreeMap::new(),
    }
}

/// Write the summaries atomically (temp file + rename). Best-effort: the
/// caller treats a write failure as "no cache next run", not a fatal error.
pub fn store(dir: &Path, key: u64, summaries: &[FileSummary]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join("summaries.tmp");
    std::fs::write(&tmp, serialize(key, summaries))?;
    std::fs::rename(&tmp, dir.join(CACHE_FILE))
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                't' => out.push('\t'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Render the cache file: a header line with the global key, then per-file
/// record groups. Tab-separated, strings escaped.
pub fn serialize(key: u64, summaries: &[FileSummary]) -> String {
    let mut out = format!("alexa-analyzer-cache {CACHE_FORMAT} {key:016x}\n");
    for s in summaries {
        out.push_str(&format!(
            "file\t{}\t{}\t{}\t{:016x}\n",
            esc(&s.rel),
            esc(&s.crate_name),
            u8::from(s.is_bin),
            s.hash
        ));
        for f in &s.fns {
            out.push_str(&format!(
                "fn\t{}\t{}\t{}\t{}\t{}\t{}\n",
                esc(&f.name),
                f.qual
                    .as_deref()
                    .map(esc)
                    .unwrap_or_else(|| "-".to_string()),
                f.line,
                f.col,
                u8::from(f.is_pub),
                u8::from(f.is_test)
            ));
            for c in &f.calls {
                let kind = match &c.kind {
                    CallKind::Free => "F".to_string(),
                    CallKind::Method => "M".to_string(),
                    CallKind::MethodOnSelf => "S".to_string(),
                    CallKind::Qualified(q) => format!("Q:{}", esc(q)),
                };
                out.push_str(&format!("call\t{}\t{}\t{}\n", esc(&c.name), kind, c.line));
            }
            for src in &f.sources {
                out.push_str(&format!(
                    "src\t{}\t{}\t{}\n",
                    esc(&src.kind),
                    esc(&src.token),
                    src.line
                ));
            }
            for id in &f.idents {
                out.push_str(&format!("ident\t{}\n", esc(id)));
            }
        }
        for st in &s.structs {
            out.push_str(&format!("struct\t{}\t{}\n", esc(&st.name), st.line));
            for fld in &st.fields {
                out.push_str(&format!(
                    "field\t{}\t{}\t{}\n",
                    esc(&fld.name),
                    fld.line,
                    fld.col
                ));
            }
        }
        for lit in &s.shaped_literals {
            out.push_str(&format!("lit\t{}\n", esc(lit)));
        }
        for f in &s.findings {
            out.push_str(&format!(
                "finding\t{}\t{}\t{}\t{}\t{}\n",
                f.lint,
                f.line,
                f.col,
                esc(&f.snippet),
                esc(&f.message)
            ));
        }
        for a in &s.allows {
            out.push_str(&format!(
                "allow\t{}\t{}\t{}\t{}\n",
                esc(&a.lints.join(",")),
                a.line,
                a.col,
                u8::from(a.has_reason)
            ));
        }
    }
    out
}

/// Strict parse of a cache file against the expected key. `None` on any
/// mismatch or malformed line — the caller treats that as a full miss.
pub fn parse(src: &str, key: u64) -> Option<BTreeMap<String, FileSummary>> {
    let mut lines = src.lines();
    let header = lines.next()?;
    if header != format!("alexa-analyzer-cache {CACHE_FORMAT} {key:016x}") {
        return None;
    }
    let mut out: BTreeMap<String, FileSummary> = BTreeMap::new();
    let mut cur: Option<FileSummary> = None;
    for line in lines {
        let parts: Vec<&str> = line.split('\t').collect();
        match parts.as_slice() {
            ["file", rel, crate_name, is_bin, hash] => {
                if let Some(done) = cur.take() {
                    out.insert(done.rel.clone(), done);
                }
                cur = Some(FileSummary {
                    rel: unesc(rel)?,
                    crate_name: unesc(crate_name)?,
                    is_bin: *is_bin == "1",
                    hash: u64::from_str_radix(hash, 16).ok()?,
                    ..FileSummary::default()
                });
            }
            ["fn", name, qual, line, col, is_pub, is_test] => {
                cur.as_mut()?.fns.push(FnSym {
                    name: unesc(name)?,
                    qual: if *qual == "-" {
                        None
                    } else {
                        Some(unesc(qual)?)
                    },
                    line: line.parse().ok()?,
                    col: col.parse().ok()?,
                    is_pub: *is_pub == "1",
                    is_test: *is_test == "1",
                    calls: Vec::new(),
                    sources: Vec::new(),
                    idents: Default::default(),
                });
            }
            ["call", name, kind, line] => {
                let kind = match *kind {
                    "F" => CallKind::Free,
                    "M" => CallKind::Method,
                    "S" => CallKind::MethodOnSelf,
                    q => CallKind::Qualified(unesc(q.strip_prefix("Q:")?)?),
                };
                cur.as_mut()?.fns.last_mut()?.calls.push(CallRef {
                    name: unesc(name)?,
                    kind,
                    line: line.parse().ok()?,
                });
            }
            ["src", kind, token, line] => {
                cur.as_mut()?.fns.last_mut()?.sources.push(SourceHit {
                    kind: unesc(kind)?,
                    token: unesc(token)?,
                    line: line.parse().ok()?,
                });
            }
            ["ident", text] => {
                cur.as_mut()?.fns.last_mut()?.idents.insert(unesc(text)?);
            }
            ["struct", name, line] => {
                cur.as_mut()?.structs.push(StructSym {
                    name: unesc(name)?,
                    line: line.parse().ok()?,
                    fields: Vec::new(),
                });
            }
            ["field", name, line, col] => {
                cur.as_mut()?.structs.last_mut()?.fields.push(FieldSym {
                    name: unesc(name)?,
                    line: line.parse().ok()?,
                    col: col.parse().ok()?,
                });
            }
            ["lit", text] => {
                cur.as_mut()?.shaped_literals.insert(unesc(text)?);
            }
            ["finding", lint, line, col, snippet, message] => {
                // Map back to the catalog's static id; an unknown lint means
                // the cache came from a different analyzer — full miss.
                let lint = lints::spec(&unesc(lint)?)?.id;
                let path = cur.as_ref()?.rel.clone();
                cur.as_mut()?.findings.push(Finding {
                    lint,
                    severity: Severity::Deny, // resolved by the driver
                    path,
                    line: line.parse().ok()?,
                    col: col.parse().ok()?,
                    snippet: unesc(snippet)?,
                    message: unesc(message)?,
                });
            }
            ["allow", lints, line, col, has_reason] => {
                cur.as_mut()?.allows.push(AllowDirective {
                    lints: unesc(lints)?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                    line: line.parse().ok()?,
                    col: col.parse().ok()?,
                    has_reason: *has_reason == "1",
                    used: false,
                });
            }
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        out.insert(done.rel.clone(), done);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::FileCtx;
    use crate::symbols::summarize;
    use std::collections::BTreeSet;

    fn sample_summary() -> FileSummary {
        let src = "pub fn render() { stamp(); }\n\
                   fn stamp() -> u64 { std::time::Instant::now(); 7 }\n\
                   pub struct Shard { pub alpha: u64, beta: u64 }\n\
                   // analyzer:allow(AP02) -- demo reason\n\
                   fn escapee() {}\n";
        let ctx = FileCtx {
            rel_path: "crates/demo/src/lib.rs".to_string(),
            crate_name: "demo".to_string(),
            is_bin: false,
        };
        let wire: BTreeSet<String> = ["render".to_string()].into_iter().collect();
        let lexed = lex(src);
        let finding = Finding {
            lint: "AP02",
            severity: Severity::Deny,
            path: ctx.rel_path.clone(),
            line: 2,
            col: 5,
            snippet: "tab\there".to_string(),
            message: "msg with \"quotes\" and \\ slash".to_string(),
        };
        summarize(&ctx, &lexed, fnv1a(src.as_bytes()), &wire, vec![finding])
    }

    #[test]
    fn summaries_round_trip_byte_exactly() {
        let s = sample_summary();
        let rendered = serialize(42, std::slice::from_ref(&s));
        let parsed = parse(&rendered, 42).expect("parses");
        let back = parsed.get("crates/demo/src/lib.rs").expect("present");
        assert_eq!(serialize(42, std::slice::from_ref(back)), rendered);
        assert_eq!(back.fns.len(), s.fns.len());
        assert_eq!(back.findings[0].message, s.findings[0].message);
        assert_eq!(back.findings[0].snippet, "tab\there");
        assert_eq!(back.allows.len(), 1);
        assert!(back.allows[0].has_reason);
    }

    #[test]
    fn wrong_key_or_corruption_is_a_full_miss() {
        let rendered = serialize(42, &[sample_summary()]);
        assert!(parse(&rendered, 43).is_none(), "key mismatch");
        let corrupt = rendered.replace("fn\t", "fnord\t");
        assert!(parse(&corrupt, 42).is_none(), "unknown record kind");
        assert!(parse("", 42).is_none(), "empty file");
    }

    #[test]
    fn global_key_tracks_config_and_registry() {
        let cfg_a = Config::default();
        let mut cfg_b = Config::default();
        cfg_b.entry_paths.insert("crates/audit/src/".to_string());
        let reg = Registry::default();
        assert_ne!(global_key(&cfg_a, &reg), global_key(&cfg_b, &reg));
        assert_eq!(global_key(&cfg_a, &reg), global_key(&cfg_a, &reg));
    }

    #[test]
    fn store_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("alexa-analyzer-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        let s = sample_summary();
        store(&dir, 7, std::slice::from_ref(&s)).expect("store");
        let loaded = load(&dir, 7);
        assert_eq!(loaded.len(), 1);
        assert!(load(&dir, 8).is_empty(), "different key misses");
    }
}
