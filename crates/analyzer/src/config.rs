//! `analyzer.toml` — configuration and the ratchet baseline.
//!
//! The parser is a deliberately minimal TOML subset (tables, string/array
//! values, `[[baseline]]` array-of-tables) so the analyzer stays
//! dependency-free. The format it accepts:
//!
//! ```toml
//! [lints.AD01]
//! allow_crates = ["obs", "bencher", "bench"]
//!
//! [severity]
//! AP03 = "warn"
//!
//! [[baseline]]
//! lint = "AP02"
//! path = "crates/net/src/flowstats.rs"
//! count = 2
//! ```
//!
//! Baseline semantics are a **ratchet**: for each `(lint, path)` the actual
//! finding count must equal the recorded count. More findings = a new
//! violation; fewer = a stale entry that must be ratcheted down. Either way
//! the run fails, so the baseline can only shrink over time and always
//! reflects reality.

use crate::findings::Severity;
use std::collections::{BTreeMap, BTreeSet};

/// A typed configuration error with file/line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in analyzer.toml, 0 when not line-specific.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "analyzer.toml:{}: {}", self.line, self.message)
        } else {
            write!(f, "analyzer.toml: {}", self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

/// One `[[baseline]]` entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Lint id.
    pub lint: String,
    /// Repo-relative file path.
    pub path: String,
    /// Accepted finding count for that (lint, path).
    pub count: usize,
}

/// One AS02 wire pairing: a struct and the codec functions that must both
/// mention every one of its fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePair {
    /// Struct name as declared in the struct file.
    pub struct_name: String,
    /// Encode function name in the wire file.
    pub encode_fn: String,
    /// Decode function name in the wire file.
    pub decode_fn: String,
}

/// Parsed analyzer configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crates allowed to read wall clocks (AD01).
    pub wallclock_allow: BTreeSet<String>,
    /// Crates allowed to spawn threads (AD04).
    pub thread_allow: BTreeSet<String>,
    /// Crates whose output ordering matters (AD03 applies).
    pub ordered_crates: BTreeSet<String>,
    /// Crates exempt from the panic-safety lints (dev-tool shims whose API
    /// *is* panicking, e.g. the proptest substitute).
    pub panic_exempt: BTreeSet<String>,
    /// Path prefixes on which AD05 (allocation in a loop) applies — the
    /// hot analysis paths that must stream from the shared index.
    pub alloc_paths: BTreeSet<String>,
    /// Committed-surface path prefixes for AS01 (determinism taint): public
    /// functions under these paths must not transitively reach a
    /// wallclock/entropy/spawn source. Empty = lint inactive.
    pub entry_paths: BTreeSet<String>,
    /// AS02 wire pairings (`"Struct:encode_fn:decode_fn"` in the config).
    /// Empty = lint inactive.
    pub wire_pairs: Vec<WirePair>,
    /// File declaring the AS02 wire-paired structs.
    pub struct_file: String,
    /// File holding the AS02 codec functions.
    pub wire_file: String,
    /// Exit-status literals AS04 accepts in bin crates (defaults to the
    /// documented 0/2/3 contract when unset).
    pub exit_codes: BTreeSet<String>,
    /// Per-lint severity overrides.
    pub severity: BTreeMap<String, Severity>,
    /// The ratchet baseline.
    pub baseline: Vec<BaselineEntry>,
}

impl Config {
    /// Parse `analyzer.toml` content.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        // The baseline entry currently being filled.
        let mut current: Option<(Option<String>, Option<String>, Option<usize>)> = None;

        let finish = |cur: &mut Option<(Option<String>, Option<String>, Option<usize>)>,
                      baseline: &mut Vec<BaselineEntry>,
                      line: u32|
         -> Result<(), ConfigError> {
            if let Some((lint, path, count)) = cur.take() {
                match (lint, path, count) {
                    (Some(lint), Some(path), Some(count)) => {
                        baseline.push(BaselineEntry { lint, path, count });
                        Ok(())
                    }
                    _ => Err(ConfigError {
                        line,
                        message: "incomplete [[baseline]] entry: needs lint, path and count"
                            .to_string(),
                    }),
                }
            } else {
                Ok(())
            }
        };

        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[baseline]]" {
                finish(&mut current, &mut cfg.baseline, lineno)?;
                current = Some((None, None, None));
                section = "baseline".to_string();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                finish(&mut current, &mut cfg.baseline, lineno)?;
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got {line:?}"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match section.as_str() {
                "baseline" => {
                    let Some(cur) = current.as_mut() else {
                        return Err(ConfigError {
                            line: lineno,
                            message: "baseline keys outside a [[baseline]] entry".to_string(),
                        });
                    };
                    match key {
                        "lint" => cur.0 = Some(parse_string(value, lineno)?),
                        "path" => cur.1 = Some(parse_string(value, lineno)?),
                        "count" => {
                            cur.2 = Some(value.parse().map_err(|_| ConfigError {
                                line: lineno,
                                message: format!("count must be an integer, got {value:?}"),
                            })?)
                        }
                        other => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown baseline key {other:?}"),
                            })
                        }
                    }
                }
                "severity" => {
                    let sev = parse_string(value, lineno)?;
                    let sev = Severity::parse(&sev).ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!("severity must be \"warn\" or \"deny\", got {sev:?}"),
                    })?;
                    cfg.severity.insert(key.to_string(), sev);
                }
                s if s.starts_with("lints.") => {
                    let lint = &s["lints.".len()..];
                    match (lint, key) {
                        ("AS02", "struct_file") => cfg.struct_file = parse_string(value, lineno)?,
                        ("AS02", "wire_file") => cfg.wire_file = parse_string(value, lineno)?,
                        ("AS02", "pairs") => {
                            for spec in parse_string_array(value, lineno)? {
                                cfg.wire_pairs.push(parse_wire_pair(&spec, lineno)?);
                            }
                        }
                        _ => {
                            let list = parse_string_array(value, lineno)?;
                            let target = match (lint, key) {
                                ("AD01", "allow_crates") => &mut cfg.wallclock_allow,
                                ("AD04", "allow_crates") => &mut cfg.thread_allow,
                                ("AD03", "crates") => &mut cfg.ordered_crates,
                                ("AP01", "exempt_crates") | ("AP02", "exempt_crates") => {
                                    &mut cfg.panic_exempt
                                }
                                ("AD05", "paths") => &mut cfg.alloc_paths,
                                ("AS01", "entry_paths") => &mut cfg.entry_paths,
                                ("AS04", "codes") => &mut cfg.exit_codes,
                                _ => {
                                    return Err(ConfigError {
                                        line: lineno,
                                        message: format!(
                                            "unknown option `{key}` for [lints.{lint}]"
                                        ),
                                    })
                                }
                            };
                            target.extend(list);
                        }
                    }
                }
                other => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown section [{other}]"),
                    });
                }
            }
        }
        finish(&mut current, &mut cfg.baseline, src.lines().count() as u32)?;
        cfg.baseline.sort();
        Ok(cfg)
    }

    /// The baseline count for a `(lint, path)` pair (0 when absent).
    pub fn baseline_count(&self, lint: &str, path: &str) -> usize {
        self.baseline
            .iter()
            .find(|b| b.lint == lint && b.path == path)
            .map(|b| b.count)
            .unwrap_or(0)
    }

    /// Exit-status literals AS04 accepts: the configured set, or the
    /// documented `0`/`2`/`3` contract when the config is silent.
    pub fn allowed_exit_codes(&self) -> BTreeSet<String> {
        if self.exit_codes.is_empty() {
            ["0", "2", "3"].iter().map(|s| s.to_string()).collect()
        } else {
            self.exit_codes.clone()
        }
    }

    /// Resolved severity for a lint id.
    pub fn severity_of(&self, id: &str) -> Severity {
        self.severity.get(id).copied().unwrap_or_else(|| {
            crate::lints::spec(id)
                .map(|s| s.default_severity)
                .unwrap_or(Severity::Deny)
        })
    }
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: u32) -> Result<String, ConfigError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| ConfigError {
            line,
            message: format!("expected a quoted string, got {value:?}"),
        })
}

/// Parse an AS02 pair spec `"Struct:encode_fn:decode_fn"`.
fn parse_wire_pair(spec: &str, line: u32) -> Result<WirePair, ConfigError> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        [s, e, d] if !s.is_empty() && !e.is_empty() && !d.is_empty() => Ok(WirePair {
            struct_name: s.to_string(),
            encode_fn: e.to_string(),
            decode_fn: d.to_string(),
        }),
        _ => Err(ConfigError {
            line,
            message: format!("AS02 pair must be \"Struct:encode_fn:decode_fn\", got {spec:?}"),
        }),
    }
}

fn parse_string_array(value: &str, line: u32) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line,
            message: format!("expected an array of strings, got {value:?}"),
        })?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, line))
        .collect()
}

/// Everything in the existing config up to the first `[[baseline]]` entry —
/// preserved verbatim when rewriting the baseline. Only a line that *is* a
/// `[[baseline]]` header counts; the token appearing inside a comment or
/// value does not start the baseline section.
pub fn baseline_header(src: &str) -> String {
    let mut pos = 0;
    for line in src.split_inclusive('\n') {
        if line.trim() == "[[baseline]]" {
            return src[..pos].to_string();
        }
        pos += line.len();
    }
    let mut s = src.trim_end().to_string();
    if !s.is_empty() {
        s.push_str("\n\n");
    }
    s
}

/// Render `[[baseline]]` entries back to TOML (for `--write-baseline`).
pub fn render_baseline(entries: &[BaselineEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&format!(
            "[[baseline]]\nlint = \"{}\"\npath = \"{}\"\ncount = {}\n\n",
            e.lint, e.path, e.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[lints.AD01]
allow_crates = ["obs", "bench"] # trailing comment

[lints.AD03]
crates = ["net"]

[lints.AS01]
entry_paths = ["crates/net/src/render/"]

[lints.AS02]
struct_file = "crates/net/src/schema.rs"
wire_file = "crates/net/src/wire.rs"
pairs = ["Shard:shard_to_json:shard_from_json"]

[lints.AS04]
codes = ["0", "2", "3", "7"]

[severity]
AP03 = "warn"

[[baseline]]
lint = "AP02"
path = "crates/net/src/a.rs"
count = 3

[[baseline]]
lint = "AP01"
path = "crates/policy/src/b.rs"
count = 1
"#;

    #[test]
    fn parses_the_full_surface() {
        let cfg = Config::parse(SAMPLE).expect("parse");
        assert!(cfg.wallclock_allow.contains("obs"));
        assert!(cfg.ordered_crates.contains("net"));
        assert_eq!(cfg.severity_of("AP03"), Severity::Warn);
        assert_eq!(cfg.severity_of("AP02"), Severity::Deny);
        assert_eq!(cfg.baseline.len(), 2);
        assert_eq!(cfg.baseline_count("AP02", "crates/net/src/a.rs"), 3);
        assert_eq!(cfg.baseline_count("AP02", "crates/net/src/other.rs"), 0);
        assert!(cfg.entry_paths.contains("crates/net/src/render/"));
        assert_eq!(cfg.struct_file, "crates/net/src/schema.rs");
        assert_eq!(cfg.wire_file, "crates/net/src/wire.rs");
        assert_eq!(
            cfg.wire_pairs,
            vec![WirePair {
                struct_name: "Shard".to_string(),
                encode_fn: "shard_to_json".to_string(),
                decode_fn: "shard_from_json".to_string(),
            }]
        );
        assert!(cfg.allowed_exit_codes().contains("7"));
    }

    #[test]
    fn exit_codes_default_to_the_documented_contract() {
        let cfg = Config::parse("").expect("empty config parses");
        let codes = cfg.allowed_exit_codes();
        assert_eq!(
            codes.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["0", "2", "3"]
        );
    }

    #[test]
    fn malformed_wire_pair_is_an_error() {
        let err = Config::parse("[lints.AS02]\npairs = [\"Shard:only_one\"]\n").expect_err("fail");
        assert!(err.message.contains("Struct:encode_fn:decode_fn"), "{err}");
    }

    #[test]
    fn incomplete_baseline_is_an_error() {
        let err = Config::parse("[[baseline]]\nlint = \"AP01\"\n").expect_err("must fail");
        assert!(err.message.contains("incomplete"), "{err}");
    }

    #[test]
    fn unknown_section_is_an_error() {
        assert!(Config::parse("[mystery]\nx = \"1\"\n").is_err());
    }

    #[test]
    fn bad_severity_is_an_error() {
        assert!(Config::parse("[severity]\nAP03 = \"loud\"\n").is_err());
    }

    #[test]
    fn header_ignores_baseline_token_in_comments() {
        let src = "# the [[baseline]] ratchet\n[lints.AD01]\nallow_crates = []\n\n[[baseline]]\nlint = \"AP02\"\npath = \"a.rs\"\ncount = 1\n";
        assert_eq!(
            baseline_header(src),
            "# the [[baseline]] ratchet\n[lints.AD01]\nallow_crates = []\n\n"
        );
    }

    #[test]
    fn header_without_baseline_gets_separator() {
        assert_eq!(
            baseline_header("[severity]\nAP03 = \"warn\"\n"),
            "[severity]\nAP03 = \"warn\"\n\n"
        );
        assert_eq!(baseline_header(""), "");
    }

    #[test]
    fn baseline_roundtrips() {
        let cfg = Config::parse(SAMPLE).expect("parse");
        let rendered = render_baseline(&cfg.baseline);
        let reparsed = Config::parse(&rendered).expect("reparse");
        assert_eq!(cfg.baseline, reparsed.baseline);
    }
}
