//! Per-file symbol summaries: the input to the cross-file semantic lints.
//!
//! The extraction is lexical, built on the same token stream as the
//! per-file lints: a brace-stack scan tracks `impl`/`trait` blocks and
//! (possibly nested) `fn` bodies, and records for every function its call
//! sites, its determinism taint sources (wallclock/entropy/spawn tokens)
//! and its definition site. Struct declarations keep per-field lines for
//! the wire-schema lint, and `dotted.lowercase`-shaped string literals are
//! collected for the registry-liveness lint.
//!
//! A [`FileSummary`] is everything the semantic pass needs from a file —
//! which is what makes the incremental cache sound: cached summaries of
//! unchanged files combine with fresh summaries of edited files, and the
//! cross-file lints always recompute over the full set, so an edit to a
//! callee re-taints its cached callers.

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::Finding;
use crate::lexer::{AllowDirective, Lexed, Tok, TokKind};
use crate::lints::{self, FileCtx};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CallKind {
    /// `name(…)` — a free function in scope.
    Free,
    /// `qual::name(…)` — the last path segment before the callee.
    Qualified(String),
    /// `.name(…)` — a method on an unknown receiver.
    Method,
    /// `self.name(…)` — a method on the enclosing impl type.
    MethodOnSelf,
}

/// One (deduplicated) call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallRef {
    /// Callee name.
    pub name: String,
    /// How the callee is named.
    pub kind: CallKind,
    /// 1-based line of the first occurrence.
    pub line: u32,
}

/// A determinism taint source inside a function body.
#[derive(Debug, Clone)]
pub struct SourceHit {
    /// Source class: `wallclock`, `entropy` or `spawn`.
    pub kind: String,
    /// The offending token text.
    pub token: String,
    /// 1-based line.
    pub line: u32,
}

/// One function (free, associated or trait method) found in a file.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, `None` for free functions.
    pub qual: Option<String>,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Declared with `pub` (any visibility scope).
    pub is_pub: bool,
    /// Defined under `#[cfg(test)]`.
    pub is_test: bool,
    /// Deduplicated call sites in the body.
    pub calls: Vec<CallRef>,
    /// Taint sources in the body.
    pub sources: Vec<SourceHit>,
    /// Distinct identifier and string-literal texts in the body — collected
    /// only for configured wire codec functions (AS02).
    pub idents: BTreeSet<String>,
}

impl FnSym {
    /// `Type::name` for associated functions, plain `name` otherwise.
    pub fn display_name(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One named field of a struct declaration.
#[derive(Debug, Clone)]
pub struct FieldSym {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// 1-based column of the field name.
    pub col: u32,
}

/// A struct declaration with named fields.
#[derive(Debug, Clone)]
pub struct StructSym {
    /// Struct name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// The named fields, in declaration order.
    pub fields: Vec<FieldSym>,
}

/// Everything the semantic pass needs from one file.
#[derive(Debug, Clone, Default)]
pub struct FileSummary {
    /// Repo-relative path, forward slashes.
    pub rel: String,
    /// Crate directory name under `crates/`.
    pub crate_name: String,
    /// Binary target (`src/main.rs` or `src/bin/*`).
    pub is_bin: bool,
    /// FNV-1a hash of the file content (the cache key).
    pub hash: u64,
    /// Functions, in source order.
    pub fns: Vec<FnSym>,
    /// Struct declarations with named fields.
    pub structs: Vec<StructSym>,
    /// `dotted.lowercase`-shaped string literals in non-test code — the
    /// liveness witnesses for AS03.
    pub shaped_literals: BTreeSet<String>,
    /// Raw per-file lint findings, *before* escape directives are applied
    /// (the driver re-applies escapes every run, so cached findings and
    /// fresh semantic findings share one escape pass).
    pub findings: Vec<Finding>,
    /// Escape directives found in the file.
    pub allows: Vec<AllowDirective>,
}

/// Keywords that can precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "as", "in", "let", "mut", "ref", "move",
    "else", "break", "continue", "yield", "where", "impl", "dyn",
];

/// Tokens that may legally sit at item position right before an `impl`,
/// `trait` or `struct` keyword.
fn at_item_position(toks: &[Tok], i: usize) -> bool {
    match i.checked_sub(1).and_then(|p| toks.get(p)) {
        None => true,
        Some(p) => match p.kind {
            TokKind::Punct => matches!(p.text.as_str(), "{" | "}" | ";" | "]" | ")"),
            TokKind::Ident => matches!(p.text.as_str(), "unsafe" | "pub" | "auto"),
            _ => false,
        },
    }
}

/// Extract the impl/trait target type from the tokens between the keyword
/// and the opening `{`: the last top-level identifier after the final
/// top-level `for` (or of the whole header), with any `where` clause cut.
fn impl_target(toks: &[Tok], after_kw: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut segment_start = after_kw;
    let mut j = after_kw;
    let mut last_ident: Option<&str> = None;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | ";" if angle <= 0 => break,
                _ => {}
            },
            TokKind::Ident if angle == 0 => match t.text.as_str() {
                // HRTB `for<'a>` is not an impl-for.
                "for" if toks.get(j + 1).map(|n| n.text.as_str()) != Some("<") => {
                    segment_start = j + 1;
                }
                "where" => break,
                _ => {}
            },
            _ => {}
        }
        j += 1;
    }
    // Re-scan the chosen segment for its last top-level identifier.
    let mut angle = 0i32;
    for t in toks.iter().take(j).skip(segment_start) {
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            },
            TokKind::Ident if angle == 0 && t.text != "for" && t.text != "where" => {
                last_ident = Some(&t.text)
            }
            _ => {}
        }
    }
    last_ident.map(str::to_string)
}

/// Whether the tokens before a `fn` keyword include `pub`.
fn fn_is_pub(toks: &[Tok], fn_kw: usize) -> bool {
    let mut j = fn_kw;
    let mut steps = 0;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        let t = &toks[j];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "pub" => return true,
                "const" | "async" | "unsafe" | "extern" | "crate" | "super" | "self" | "in" => {}
                _ => return false,
            },
            TokKind::Punct if t.text == "(" || t.text == ")" => {}
            TokKind::Str => {} // extern "C"
            _ => return false,
        }
    }
    false
}

/// Build the [`FileSummary`] of one lexed file. `wire_fns` names the
/// functions whose body identifiers AS02 needs; `findings` are the raw
/// per-file lint findings already computed for this file.
pub fn summarize(
    ctx: &FileCtx,
    lexed: &Lexed,
    hash: u64,
    wire_fns: &BTreeSet<String>,
    findings: Vec<Finding>,
) -> FileSummary {
    let toks = &lexed.toks;
    let mut sum = FileSummary {
        rel: ctx.rel_path.clone(),
        crate_name: ctx.crate_name.clone(),
        is_bin: ctx.is_bin,
        hash,
        findings,
        allows: lexed.allows.clone(),
        ..FileSummary::default()
    };

    let mut depth = 0usize;
    // (brace depth of the block body, impl/trait target type)
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    // (index into sum.fns, brace depth of the body)
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    let mut pending_fn: Option<usize> = None;
    // Per-open-fn call dedup: (name, kind) -> first line.
    let mut call_seen: Vec<BTreeMap<(String, CallKind), u32>> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "{" => {
                    depth += 1;
                    if let Some(fn_idx) = pending_fn.take() {
                        fn_stack.push((fn_idx, depth));
                        call_seen.push(BTreeMap::new());
                    } else if let Some(ty) = pending_impl.take() {
                        impl_stack.push((depth, ty));
                    }
                }
                "}" => {
                    if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                        if let Some((fn_idx, _)) = fn_stack.pop() {
                            if let Some(seen) = call_seen.pop() {
                                let calls = &mut sum.fns[fn_idx].calls;
                                for ((name, kind), line) in seen {
                                    calls.push(CallRef { name, kind, line });
                                }
                            }
                        }
                    }
                    if impl_stack.last().is_some_and(|&(d, _)| d == depth) {
                        impl_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                ";" => {
                    // A bodyless declaration (trait fn signature).
                    pending_fn = None;
                    pending_impl = None;
                }
                _ => {}
            },
            TokKind::Ident => {
                let name = t.text.as_str();
                match name {
                    "impl" | "trait" if at_item_position(toks, i) => {
                        if name == "trait" {
                            // The trait's own name follows directly.
                            if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                                pending_impl = Some(n.text.clone());
                            }
                        } else {
                            pending_impl = impl_target(toks, i + 1);
                        }
                    }
                    "fn" => {
                        if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                            let qual = impl_stack.last().map(|(_, ty)| ty.clone());
                            sum.fns.push(FnSym {
                                name: n.text.clone(),
                                qual,
                                line: n.line,
                                col: n.col,
                                is_pub: fn_is_pub(toks, i),
                                is_test: n.test,
                                calls: Vec::new(),
                                sources: Vec::new(),
                                idents: BTreeSet::new(),
                            });
                            pending_fn = Some(sum.fns.len() - 1);
                        }
                    }
                    "struct" if at_item_position(toks, i) => {
                        if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                            let mut st = StructSym {
                                name: n.text.clone(),
                                line: n.line,
                                fields: Vec::new(),
                            };
                            scan_struct_fields(toks, i + 2, &mut st);
                            sum.structs.push(st);
                        }
                    }
                    _ => {
                        if let Some(&(fn_idx, _)) = fn_stack.last() {
                            scan_body_ident(toks, i, fn_idx, &mut sum, &mut call_seen);
                        }
                    }
                }
                if !t.test && fn_stack.last().is_some() {
                    let in_wire = fn_stack
                        .iter()
                        .any(|&(idx, _)| wire_fns.contains(&sum.fns[idx].name));
                    if in_wire {
                        for &(idx, _) in &fn_stack {
                            if wire_fns.contains(&sum.fns[idx].name) {
                                sum.fns[idx].idents.insert(t.text.clone());
                            }
                        }
                    }
                }
            }
            TokKind::Str => {
                if !t.test && lints::is_dotted_lowercase(&t.text) {
                    sum.shaped_literals.insert(t.text.clone());
                }
                for &(idx, _) in &fn_stack {
                    if wire_fns.contains(&sum.fns[idx].name) {
                        sum.fns[idx].idents.insert(t.text.clone());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    sum
}

/// Classify one identifier inside a function body: call site and/or taint
/// source, recorded against `fn_idx`.
fn scan_body_ident(
    toks: &[Tok],
    i: usize,
    fn_idx: usize,
    sum: &mut FileSummary,
    call_seen: &mut [BTreeMap<(String, CallKind), u32>],
) {
    let t = &toks[i];
    let name = t.text.as_str();

    // Taint sources (the same token shapes AD01/AD02/AD04 match, but
    // unconditioned: sanctioned crates are exactly where the sources live).
    let source_kind = if lints::WALLCLOCK_IDENTS.contains(&name) {
        Some("wallclock")
    } else if lints::ENTROPY_IDENTS.contains(&name) {
        Some("entropy")
    } else if name == "JoinHandle"
        || (matches!(name, "spawn" | "scope") && prev_path_ident_is(toks, i, "thread"))
        || (name == "Command" && prev_path_ident_is(toks, i, "process"))
    {
        Some("spawn")
    } else {
        None
    };
    if let Some(kind) = source_kind {
        sum.fns[fn_idx].sources.push(SourceHit {
            kind: kind.to_string(),
            token: name.to_string(),
            line: t.line,
        });
    }

    // Call sites: `name(`, `qual::name(`, `.name(`, `self.name(`.
    if !next_punct_is(toks, i, "(") || NON_CALL_KEYWORDS.contains(&name) {
        return;
    }
    let kind = if prev_punct_is(toks, i, ".") {
        if i >= 2 && toks[i - 2].kind == TokKind::Ident && toks[i - 2].text == "self" {
            CallKind::MethodOnSelf
        } else {
            CallKind::Method
        }
    } else if prev_punct_is(toks, i, ":") && i >= 2 && toks[i - 2].text == ":" {
        match i.checked_sub(3).and_then(|p| toks.get(p)) {
            Some(q) if q.kind == TokKind::Ident => CallKind::Qualified(q.text.clone()),
            _ => CallKind::Free, // turbofish or odd path — resolve by name
        }
    } else {
        CallKind::Free
    };
    if let Some(seen) = call_seen.last_mut() {
        seen.entry((name.to_string(), kind)).or_insert(t.line);
    }
}

/// After `struct Name`, collect named fields if a `{` body follows (skips
/// tuple and unit structs). `j` points just past the name token.
fn scan_struct_fields(toks: &[Tok], mut j: usize, st: &mut StructSym) {
    // Skip generics/where up to the body opener, stopping at `;` or `(`.
    let mut angle = 0i32;
    while let Some(t) = toks.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" | ";" if angle <= 0 => return,
                "{" if angle <= 0 => break,
                _ => {}
            }
        }
        j += 1;
    }
    let mut depth = 0usize;
    while let Some(t) = toks.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
        // A field: `ident :` (not `::`) at body depth 1, preceded by a
        // field separator, visibility or attribute close.
        if depth == 1
            && t.kind == TokKind::Ident
            && next_punct_is(toks, j, ":")
            && toks.get(j + 2).map(|n| n.text.as_str()) != Some(":")
        {
            let prev_ok = match j.checked_sub(1).and_then(|p| toks.get(p)) {
                Some(p) => {
                    (p.kind == TokKind::Punct && matches!(p.text.as_str(), "{" | "," | ")" | "]"))
                        || (p.kind == TokKind::Ident && p.text == "pub")
                }
                None => false,
            };
            if prev_ok {
                st.fields.push(FieldSym {
                    name: t.text.clone(),
                    line: t.line,
                    col: t.col,
                });
            }
        }
        j += 1;
    }
}

fn next_punct_is(toks: &[Tok], i: usize, p: &str) -> bool {
    toks.get(i + 1)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

fn prev_punct_is(toks: &[Tok], i: usize, p: &str) -> bool {
    i >= 1 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == p
}

/// For `a::b` with the cursor at `b`, whether `a` equals `name`.
fn prev_path_ident_is(toks: &[Tok], i: usize, name: &str) -> bool {
    i >= 3
        && toks[i - 1].text == ":"
        && toks[i - 2].text == ":"
        && toks[i - 3].kind == TokKind::Ident
        && toks[i - 3].text == name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn summarize_src(src: &str) -> FileSummary {
        let lexed = lex(src);
        let ctx = FileCtx {
            rel_path: "crates/demo/src/lib.rs".to_string(),
            crate_name: "demo".to_string(),
            is_bin: false,
        };
        let wire: BTreeSet<String> = ["enc".to_string()].into_iter().collect();
        summarize(&ctx, &lexed, 0, &wire, Vec::new())
    }

    #[test]
    fn free_and_assoc_fns_with_calls() {
        let s = summarize_src(
            "pub fn top() { helper(); obj.go(); self_free(); }\n\
             fn helper() { alexa_obs::agg_time(\"x\", || {}); }\n\
             impl Recorder { pub fn time(&self) { self.lock(); } }\n\
             impl fmt::Display for Wrapper { fn fmt(&self) {} }\n\
             trait Backend { fn run(&self) { self.pre(); } }\n",
        );
        let names: Vec<String> = s.fns.iter().map(|f| f.display_name()).collect();
        assert_eq!(
            names,
            vec![
                "top",
                "helper",
                "Recorder::time",
                "Wrapper::fmt",
                "Backend::run"
            ]
        );
        assert!(s.fns[0].is_pub && !s.fns[1].is_pub);
        let top_calls: Vec<(&str, &CallKind)> = s.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), &c.kind))
            .collect();
        assert!(top_calls.contains(&("helper", &CallKind::Free)));
        assert!(top_calls.contains(&("go", &CallKind::Method)));
        assert!(s.fns[1].calls.iter().any(
            |c| c.name == "agg_time" && c.kind == CallKind::Qualified("alexa_obs".to_string())
        ));
        assert!(s.fns[2]
            .calls
            .iter()
            .any(|c| c.name == "lock" && c.kind == CallKind::MethodOnSelf));
        assert!(s.fns[4]
            .calls
            .iter()
            .any(|c| c.name == "pre" && c.kind == CallKind::MethodOnSelf));
    }

    #[test]
    fn sources_are_detected_per_fn() {
        let s = summarize_src(
            "pub fn clocky() -> u64 { let _t = std::time::Instant::now(); 7 }\n\
             pub fn pure() -> u64 { 7 }\n\
             pub fn spawny() { std::thread::spawn(|| {}); }\n",
        );
        assert_eq!(s.fns[0].sources.len(), 1);
        assert_eq!(s.fns[0].sources[0].kind, "wallclock");
        assert!(s.fns[1].sources.is_empty());
        assert_eq!(s.fns[2].sources[0].kind, "spawn");
    }

    #[test]
    fn struct_fields_with_lines() {
        let s = summarize_src(
            "pub struct Shard {\n    pub alpha: u64,\n    beta: Vec<std::string::String>,\n    #[doc(hidden)]\n    pub gamma: u64,\n}\npub struct Unit;\npub struct Tuple(u64);\n",
        );
        assert_eq!(s.structs.len(), 3);
        let fields: Vec<(&str, u32)> = s.structs[0]
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.line))
            .collect();
        assert_eq!(fields, vec![("alpha", 2), ("beta", 3), ("gamma", 5)]);
        assert!(s.structs[1].fields.is_empty());
        assert!(s.structs[2].fields.is_empty());
    }

    #[test]
    fn wire_fn_idents_and_shaped_literals() {
        let s = summarize_src(
            "pub fn enc(c: &C) -> String { let x = c.seed; push(\"seed\"); x.to_string() }\n\
             pub fn other() { emit(\"crawl.bids\"); }\n",
        );
        assert!(s.fns[0].idents.contains("seed"));
        assert!(s.fns[0].idents.contains("c"));
        assert!(s.fns[1].idents.is_empty(), "only wire fns collect idents");
        assert!(s.shaped_literals.contains("crawl.bids"));
        assert!(s.shaped_literals.contains("seed"));
    }

    #[test]
    fn nested_fns_attribute_to_the_innermost() {
        let s = summarize_src(
            "pub fn outer() { fn inner() { std::time::Instant::now(); } inner(); }\n",
        );
        assert_eq!(s.fns.len(), 2);
        let outer = &s.fns[0];
        let inner = &s.fns[1];
        assert!(outer.sources.is_empty());
        assert_eq!(inner.sources.len(), 1);
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn test_fns_are_marked() {
        let s = summarize_src("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn lib() {}");
        let t = s.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.is_test);
        let lib = s.fns.iter().find(|f| f.name == "lib").expect("lib");
        assert!(!lib.is_test);
    }
}
