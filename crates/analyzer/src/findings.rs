//! Finding records, severities and the JSON emitter.
//!
//! The JSON writer is hand-rolled (the analyzer is dependency-free by
//! design) and deterministic: findings are emitted in (path, line, lint)
//! order, so two runs over the same tree produce byte-identical output —
//! the same contract the audit pipeline itself honours.

use std::fmt;

/// How a lint's findings gate the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, never affects the exit code, never baselined.
    Warn,
    /// Gating: new findings (beyond the baseline) fail the run.
    Deny,
}

impl Severity {
    /// Lowercase label used in output and config.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parse a config value.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One lint finding at one site.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint id (see [`crate::lints::CATALOG`]).
    pub lint: &'static str,
    /// Resolved severity.
    pub severity: Severity,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the offending token (0 when unknown).
    pub col: u32,
    /// Trimmed source line.
    pub snippet: String,
    /// What is wrong.
    pub message: String,
}

impl Finding {
    /// The canonical one-line human rendering: `path:line:col: [id] message`
    /// — the `path:line:col` prefix is what editors and CI annotations parse.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{}: [{}/{}] {}",
            self.path, self.line, self.col, self.lint, self.severity, self.message
        )
    }
}

/// A baseline mismatch: the checked-in expectation no longer matches.
#[derive(Debug, Clone)]
pub struct BaselineDrift {
    /// Lint id.
    pub lint: String,
    /// File the entry covers.
    pub path: String,
    /// Count recorded in analyzer.toml.
    pub expected: usize,
    /// Count actually found.
    pub actual: usize,
}

impl BaselineDrift {
    /// Human rendering with the action to take.
    pub fn render_human(&self) -> String {
        if self.actual > self.expected {
            format!(
                "{}: [{}] {} finding(s), baseline allows {} — fix the new site(s) or add an analyzer:allow escape",
                self.path, self.lint, self.actual, self.expected
            )
        } else {
            format!(
                "{}: [{}] baseline is stale: expects {}, found {} — ratchet analyzer.toml down (run with --write-baseline)",
                self.path, self.lint, self.expected, self.actual
            )
        }
    }
}

/// Escape a string for JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the full findings report as deterministic JSON.
pub fn render_json(
    findings: &[Finding],
    drift: &[BaselineDrift],
    baselined: usize,
    clean: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"clean\": {clean},\n"));
    out.push_str(&format!("  \"baselined\": {baselined},\n"));
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}{}\n",
            f.lint,
            f.severity,
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message),
            json_escape(&f.snippet),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"baseline_drift\": [\n");
    for (i, d) in drift.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"path\": \"{}\", \"expected\": {}, \"actual\": {}}}{}\n",
            json_escape(&d.lint),
            json_escape(&d.path),
            d.expected,
            d.actual,
            if i + 1 < drift.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn empty_report_is_clean_json() {
        let s = render_json(&[], &[], 0, true);
        assert!(s.contains("\"clean\": true"));
        assert!(s.contains("\"findings\": [\n  ]"));
    }
}
