//! Extraction of the single-source name registries the O-lints check
//! against: the observability name registry in `crates/obs/src/names.rs`
//! and the fault channel labels in `crates/fault/src/profile.rs`.
//!
//! Both are plain `pub const NAME: &[&str] = [ "…", … ];` declarations, so
//! the same lexer that scans the workspace can read them: find the const's
//! identifier, then collect every string literal up to the terminating `;`.
//! Each extracted name keeps its declaration line/column, so findings that
//! point *at the registry* (AO01/AO02 self-checks, AS03 liveness) land on
//! the exact entry and per-line `analyzer:allow` escapes work there too.

use crate::lexer::{lex, TokKind};

/// One registry entry with its declaration site.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// The declared name.
    pub name: String,
    /// 1-based line of the string literal in the registry file.
    pub line: u32,
    /// 1-based column of the string literal's opening quote.
    pub col: u32,
}

/// The names the O-lints validate against.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Sanctioned observability names (spans, stages, counters, shard
    /// groups, coverage sections) from `crates/obs/src/names.rs`.
    pub obs_names: Vec<RegistryEntry>,
    /// Declared fault channel labels from `crates/fault/src/profile.rs`.
    pub fault_channels: Vec<String>,
}

impl Registry {
    /// Whether `name` is a declared observability name.
    pub fn has_obs_name(&self, name: &str) -> bool {
        self.obs_names.iter().any(|e| e.name == name)
    }
}

/// A registry that could not be loaded — a configuration error, reported
/// with a one-line message and no findings.
#[derive(Debug, Clone)]
pub struct RegistryError {
    /// What went wrong, with the path involved.
    pub message: String,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RegistryError {}

/// Relative path of the obs name registry.
pub const OBS_NAMES_PATH: &str = "crates/obs/src/names.rs";
/// Relative path of the fault channel declarations.
pub const FAULT_CHANNELS_PATH: &str = "crates/fault/src/profile.rs";

impl Registry {
    /// Load both registries from a workspace root.
    pub fn load(root: &std::path::Path) -> Result<Registry, RegistryError> {
        let obs_names = extract_const_strings(root, OBS_NAMES_PATH, "REGISTRY")?;
        let fault_channels = extract_const_strings(root, FAULT_CHANNELS_PATH, "CHANNEL_LABELS")?
            .into_iter()
            .map(|e| e.name)
            .collect();
        Ok(Registry {
            obs_names,
            fault_channels,
        })
    }
}

/// Collect the string literals of `pub const <name>: &[&str] = [...]` in
/// `rel` under `root`, with their declaration sites.
fn extract_const_strings(
    root: &std::path::Path,
    rel: &str,
    name: &str,
) -> Result<Vec<RegistryEntry>, RegistryError> {
    let path = root.join(rel);
    let src = std::fs::read_to_string(&path).map_err(|e| RegistryError {
        message: format!("cannot read name registry {rel}: {e}"),
    })?;
    let lexed = lex(&src);
    let toks = &lexed.toks;
    let start = toks
        .iter()
        .position(|t| t.kind == TokKind::Ident && t.text == name)
        .ok_or_else(|| RegistryError {
            message: format!("{rel}: no `{name}` const found — the registry moved?"),
        })?;
    let mut out = Vec::new();
    for t in &toks[start..] {
        match t.kind {
            TokKind::Str => out.push(RegistryEntry {
                name: t.text.clone(),
                line: t.line,
                col: t.col,
            }),
            TokKind::Punct if t.text == ";" => break,
            _ => {}
        }
    }
    if out.is_empty() {
        return Err(RegistryError {
            message: format!("{rel}: `{name}` declares no names"),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_from_a_temp_tree() {
        let dir = std::env::temp_dir().join("alexa-analyzer-registry-test");
        let obs = dir.join("crates/obs/src");
        let fault = dir.join("crates/fault/src");
        std::fs::create_dir_all(&obs).expect("mkdir");
        std::fs::create_dir_all(&fault).expect("mkdir");
        std::fs::write(
            obs.join("names.rs"),
            "/// Registry.\npub const REGISTRY: &[&str] = &[\n  \"boot\", // span\n  \"crawl.pre\",\n];\n",
        )
        .expect("write");
        std::fs::write(
            fault.join("profile.rs"),
            "pub const CHANNEL_LABELS: &[&str] = &[\"install\", \"packet_drop\"];\n",
        )
        .expect("write");
        let reg = Registry::load(&dir).expect("load");
        let names: Vec<&str> = reg.obs_names.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["boot", "crawl.pre"]);
        assert_eq!(
            (reg.obs_names[0].line, reg.obs_names[0].col),
            (3, 3),
            "entries carry their declaration site"
        );
        assert!(reg.has_obs_name("boot"));
        assert!(!reg.has_obs_name("nope"));
        assert_eq!(reg.fault_channels, vec!["install", "packet_drop"]);
    }

    #[test]
    fn missing_registry_is_a_clear_error() {
        let err = Registry::load(std::path::Path::new("/nonexistent-root")).expect_err("fail");
        assert!(err.message.contains("names.rs"), "{err}");
    }
}
