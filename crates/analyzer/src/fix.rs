//! `--fix`: mechanical rewrites the analyzer can apply safely.
//!
//! Two fix classes, both idempotent and both no-ops on a clean tree (CI
//! asserts this with `--fix` + `git diff --exit-code`):
//!
//! * **stale `analyzer:allow` escapes** (AX01) — a directive that
//!   suppresses no finding is deleted: the whole line when the comment
//!   stands alone, otherwise just the trailing comment;
//! * **baseline ratchet-down** — `[[baseline]]` entries whose recorded
//!   count exceeds reality are lowered to the actual count (and removed at
//!   zero). Counts are never raised: new findings stay failures to fix or
//!   escape, not debt to absorb.

use std::collections::BTreeMap;
use std::path::Path;

use crate::config::{self, BaselineEntry, Config};
use crate::{AnalysisReport, AnalyzerError};

/// What one `--fix` pass changed.
#[derive(Debug, Default)]
pub struct FixOutcome {
    /// Stale escape directives deleted.
    pub stale_allows_removed: usize,
    /// Baseline entries lowered or removed.
    pub baseline_entries_ratcheted: usize,
    /// Repo-relative paths rewritten (including `analyzer.toml`).
    pub files_rewritten: Vec<String>,
}

impl FixOutcome {
    /// Whether any file was rewritten.
    pub fn changed(&self) -> bool {
        !self.files_rewritten.is_empty()
    }

    /// One-line summary for the CLI.
    pub fn render_human(&self) -> String {
        if !self.changed() {
            return "fix: nothing to do — no stale escapes, baseline matches reality".to_string();
        }
        format!(
            "fix: removed {} stale analyzer:allow escape(s), ratcheted {} baseline entr(ies); rewrote: {}",
            self.stale_allows_removed,
            self.baseline_entries_ratcheted,
            self.files_rewritten.join(", ")
        )
    }
}

/// Apply both fix classes for the findings in `report`. Only files that
/// actually change are written.
pub fn apply(
    root: &Path,
    config_path: &Path,
    config_src: &str,
    config: &Config,
    report: &AnalysisReport,
) -> Result<FixOutcome, AnalyzerError> {
    let mut outcome = FixOutcome::default();
    remove_stale_allows(root, report, &mut outcome)?;
    ratchet_baseline(config_path, config_src, config, report, &mut outcome)?;
    Ok(outcome)
}

/// Delete the escape directives behind every AX01 finding.
fn remove_stale_allows(
    root: &Path,
    report: &AnalysisReport,
    outcome: &mut FixOutcome,
) -> Result<(), AnalyzerError> {
    // AX01 is warn by default but severity is configurable — look in both.
    let mut by_path: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for f in report.warnings.iter().chain(report.new_findings.iter()) {
        if f.lint == "AX01" {
            by_path.entry(&f.path).or_default().push(f.line);
        }
    }
    for (rel, mut lines_to_fix) in by_path {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path).map_err(|e| AnalyzerError {
            message: format!("fix: cannot read {rel}: {e}"),
        })?;
        let ends_with_newline = src.ends_with('\n');
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        // Highest line first, so removals don't shift pending indices.
        lines_to_fix.sort_unstable();
        lines_to_fix.dedup();
        for &lineno in lines_to_fix.iter().rev() {
            let Some(idx) = (lineno as usize).checked_sub(1) else {
                continue;
            };
            let Some(line) = lines.get(idx) else { continue };
            if line.trim_start().starts_with("//") {
                lines.remove(idx);
                outcome.stale_allows_removed += 1;
            } else if let Some(cut) = comment_start(line) {
                let kept = line[..cut].trim_end().to_string();
                lines[idx] = kept;
                outcome.stale_allows_removed += 1;
            }
        }
        let mut rebuilt = lines.join("\n");
        if ends_with_newline && !rebuilt.is_empty() {
            rebuilt.push('\n');
        }
        if rebuilt != src {
            std::fs::write(&path, &rebuilt).map_err(|e| AnalyzerError {
                message: format!("fix: cannot write {rel}: {e}"),
            })?;
            outcome.files_rewritten.push(rel.to_string());
        }
    }
    Ok(())
}

/// Byte offset of the trailing `// analyzer:allow…` comment on a line, if
/// one exists outside a string literal (a conservative quote-parity scan —
/// escape directives the lexer accepted are plain line comments).
fn comment_start(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i + 1 < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'/' if !in_str && bytes[i + 1] == b'/' => {
                if line[i..].contains("analyzer:allow") {
                    return Some(i);
                }
                return None;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Lower (never raise) baseline counts to the actual per-(lint, path)
/// finding counts, dropping entries that reach zero.
fn ratchet_baseline(
    config_path: &Path,
    config_src: &str,
    config: &Config,
    report: &AnalysisReport,
    outcome: &mut FixOutcome,
) -> Result<(), AnalyzerError> {
    let mut fresh: Vec<BaselineEntry> = Vec::new();
    let mut changed = 0usize;
    for b in &config.baseline {
        let actual = report
            .counts
            .get(&(b.lint.clone(), b.path.clone()))
            .copied()
            .unwrap_or(0);
        let count = b.count.min(actual);
        if count != b.count {
            changed += 1;
        }
        if count > 0 {
            fresh.push(BaselineEntry {
                lint: b.lint.clone(),
                path: b.path.clone(),
                count,
            });
        }
    }
    if changed == 0 {
        return Ok(());
    }
    let rendered = format!(
        "{}{}",
        config::baseline_header(config_src),
        config::render_baseline(&fresh)
    );
    if rendered != config_src {
        std::fs::write(config_path, &rendered).map_err(|e| AnalyzerError {
            message: format!("fix: cannot write {}: {e}", config_path.display()),
        })?;
        outcome.baseline_entries_ratcheted = changed;
        outcome
            .files_rewritten
            .push(config_path.to_string_lossy().into_owned());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::{Finding, Severity};

    fn ax01(path: &str, line: u32) -> Finding {
        Finding {
            lint: "AX01",
            severity: Severity::Warn,
            path: path.to_string(),
            line,
            col: 1,
            snippet: String::new(),
            message: String::new(),
        }
    }

    #[test]
    fn stale_allows_are_deleted_line_or_trailer() {
        let dir = std::env::temp_dir().join("alexa-analyzer-fix-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("src")).expect("mkdir");
        let rel = "src/lib.rs";
        std::fs::write(
            dir.join(rel),
            "// analyzer:allow(AP02) -- stale standalone\n\
             fn keep() {}\n\
             let x = 1; // analyzer:allow(AD01) -- stale trailer\n\
             let s = \"// analyzer:allow(AP01) in a string\";\n",
        )
        .expect("write");
        let mut report = AnalysisReport::default();
        report.warnings.push(ax01(rel, 1));
        report.warnings.push(ax01(rel, 3));
        let mut outcome = FixOutcome::default();
        remove_stale_allows(&dir, &report, &mut outcome).expect("fix");
        assert_eq!(outcome.stale_allows_removed, 2);
        let fixed = std::fs::read_to_string(dir.join(rel)).expect("read");
        assert_eq!(
            fixed,
            "fn keep() {}\nlet x = 1;\nlet s = \"// analyzer:allow(AP01) in a string\";\n"
        );
    }

    #[test]
    fn baseline_only_ratchets_down() {
        let dir = std::env::temp_dir().join("alexa-analyzer-fix-baseline-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cfg_path = dir.join("analyzer.toml");
        let cfg_src = "[severity]\nAP03 = \"warn\"\n\n\
                       [[baseline]]\nlint = \"AP02\"\npath = \"a.rs\"\ncount = 3\n\n\
                       [[baseline]]\nlint = \"AP02\"\npath = \"gone.rs\"\ncount = 1\n\n\
                       [[baseline]]\nlint = \"AP01\"\npath = \"b.rs\"\ncount = 1\n";
        std::fs::write(&cfg_path, cfg_src).expect("write");
        let config = Config::parse(cfg_src).expect("parse");
        let mut report = AnalysisReport::default();
        // a.rs now has 2 findings (was 3); gone.rs has none; b.rs has 5
        // (more than baselined — must NOT be raised).
        report
            .counts
            .insert(("AP02".to_string(), "a.rs".to_string()), 2);
        report
            .counts
            .insert(("AP01".to_string(), "b.rs".to_string()), 5);
        let mut outcome = FixOutcome::default();
        ratchet_baseline(&cfg_path, cfg_src, &config, &report, &mut outcome).expect("ratchet");
        assert_eq!(outcome.baseline_entries_ratcheted, 2);
        let rewritten = std::fs::read_to_string(&cfg_path).expect("read");
        let reparsed = Config::parse(&rewritten).expect("reparse");
        assert_eq!(reparsed.baseline_count("AP02", "a.rs"), 2);
        assert_eq!(reparsed.baseline_count("AP02", "gone.rs"), 0);
        assert_eq!(reparsed.baseline_count("AP01", "b.rs"), 1, "never raised");
        assert!(rewritten.starts_with("[severity]"), "header preserved");
    }

    #[test]
    fn clean_tree_is_a_no_op() {
        let dir = std::env::temp_dir().join("alexa-analyzer-fix-noop-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cfg_path = dir.join("analyzer.toml");
        let cfg_src = "[[baseline]]\nlint = \"AP02\"\npath = \"a.rs\"\ncount = 2\n";
        std::fs::write(&cfg_path, cfg_src).expect("write");
        let config = Config::parse(cfg_src).expect("parse");
        let mut report = AnalysisReport::default();
        report
            .counts
            .insert(("AP02".to_string(), "a.rs".to_string()), 2);
        let outcome = apply(&dir, &cfg_path, cfg_src, &config, &report).expect("apply");
        assert!(!outcome.changed(), "{outcome:?}");
        assert_eq!(
            std::fs::read_to_string(&cfg_path).expect("read"),
            cfg_src,
            "config untouched"
        );
    }
}
