//! `alexa-analyzer` CLI — run the workspace lint pass and gate on the
//! ratchet baseline. See `crates/analyzer/src/lib.rs` and DESIGN.md §11.
//!
//! Exit codes: `0` clean, `1` new findings or baseline drift, `2` usage or
//! configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use alexa_analyzer::{analyze_with, config, findings, fix, sarif, AnalyzeOpts, Config, CATALOG};

const USAGE: &str = "\
alexa-analyzer — determinism & panic-safety lints for the audit workspace

USAGE:
    cargo run -p alexa-analyzer -- [OPTIONS]

OPTIONS:
    --root <DIR>        workspace root (default: .)
    --config <FILE>     analyzer config (default: <root>/analyzer.toml)
    --format <FMT>      output format: human | json | sarif (default: human)
    --out <FILE>        also write the report to FILE
    --list-lints        print the lint catalog and exit
    --write-baseline    rewrite the [[baseline]] section of the config to
                        match current findings (the ratchet update)
    --fix               delete stale analyzer:allow escapes and ratchet the
                        baseline down to reality, then re-run the analysis
    --no-cache          skip the incremental summary cache under
                        <root>/target/analyzer
    -h, --help          print this help
";

struct Cli {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
    list_lints: bool,
    write_baseline: bool,
    fix: bool,
    no_cache: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        config: None,
        format: Format::Human,
        out: None,
        list_lints: false,
        write_baseline: false,
        fix: false,
        no_cache: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => cli.root = take_value(&mut args, "--root")?.into(),
            "--config" => cli.config = Some(take_value(&mut args, "--config")?.into()),
            "--format" => {
                cli.format = match take_value(&mut args, "--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format {other:?} (human|json|sarif)")),
                }
            }
            "--out" => cli.out = Some(take_value(&mut args, "--out")?.into()),
            "--list-lints" => cli.list_lints = true,
            "--write-baseline" => cli.write_baseline = true,
            "--fix" => cli.fix = true,
            "--no-cache" => cli.no_cache = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cli)
}

fn take_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn list_lints() {
    println!("{:<6} {:<22} {:<5} summary", "id", "slug", "sev");
    for s in CATALOG {
        println!(
            "{:<6} {:<22} {:<5} {}",
            s.id,
            s.slug,
            s.default_severity.label(),
            s.summary
        );
    }
}

fn load_config(cfg_path: &PathBuf) -> Result<(String, Config), String> {
    let src = std::fs::read_to_string(cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&src).map_err(|e| e.to_string())?;
    Ok((src, cfg))
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if cli.list_lints {
        list_lints();
        return ExitCode::SUCCESS;
    }

    let cfg_path = cli
        .config
        .clone()
        .unwrap_or_else(|| cli.root.join("analyzer.toml"));
    let (mut cfg_src, mut cfg) = match load_config(&cfg_path) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    let opts = AnalyzeOpts {
        cache_dir: if cli.no_cache {
            None
        } else {
            Some(cli.root.join("target/analyzer"))
        },
    };
    let mut report = match analyze_with(&cli.root, &cfg, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if cli.fix {
        let outcome = match fix::apply(&cli.root, &cfg_path, &cfg_src, &cfg, &report) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        println!("{}", outcome.render_human());
        if outcome.changed() {
            // Re-analyze against the rewritten tree and config so the
            // report (and the exit code) reflect the post-fix state.
            (cfg_src, cfg) = match load_config(&cfg_path) {
                Ok(v) => v,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::from(2);
                }
            };
            report = match analyze_with(&cli.root, &cfg, &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
        }
    }

    if cli.write_baseline {
        let fresh = report.fresh_baseline();
        let head = config::baseline_header(&cfg_src);
        let rendered = format!("{head}{}", config::render_baseline(&fresh));
        if let Err(e) = std::fs::write(&cfg_path, &rendered) {
            eprintln!("error: cannot write {}: {e}", cfg_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} baseline entries ({} findings) to {}",
            fresh.len(),
            fresh.iter().map(|b| b.count).sum::<usize>(),
            cfg_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let rendered = match cli.format {
        Format::Json => {
            let mut all: Vec<findings::Finding> = report.new_findings.clone();
            all.extend(report.warnings.iter().cloned());
            all.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
            findings::render_json(&all, &report.drift, report.baselined, report.clean())
        }
        Format::Sarif => {
            let mut all: Vec<findings::Finding> = report.new_findings.clone();
            all.extend(report.warnings.iter().cloned());
            all.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
            sarif::render(&all, &report.drift)
        }
        Format::Human => {
            let mut out = String::new();
            for f in &report.new_findings {
                out.push_str(&f.render_human());
                out.push('\n');
            }
            for d in &report.drift {
                out.push_str(&d.render_human());
                out.push('\n');
            }
            for w in &report.warnings {
                out.push_str(&w.render_human());
                out.push('\n');
            }
            out.push_str(&format!(
                "{} files scanned ({} cached), {} new finding(s), {} baseline drift(s), {} baselined, {} warning(s)\n",
                report.files_scanned,
                report.cache_hits,
                report.new_findings.len(),
                report.drift.len(),
                report.baselined,
                report.warnings.len()
            ));
            out
        }
    };

    print!("{rendered}");
    if let Some(path) = &cli.out {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        // analyzer gate failure, not a repro-pipeline exit — documented
        // contract is 0/1/2 for this binary.
        ExitCode::from(1) // analyzer:allow(AS04) -- gate exit, this bin's contract is 0/1/2
    }
}
