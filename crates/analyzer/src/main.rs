//! `alexa-analyzer` CLI — run the workspace lint pass and gate on the
//! ratchet baseline. See `crates/analyzer/src/lib.rs` and DESIGN.md §11.
//!
//! Exit codes: `0` clean, `1` new findings or baseline drift, `2` usage or
//! configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use alexa_analyzer::{analyze, config, findings, Config, CATALOG};

const USAGE: &str = "\
alexa-analyzer — determinism & panic-safety lints for the audit workspace

USAGE:
    cargo run -p alexa-analyzer -- [OPTIONS]

OPTIONS:
    --root <DIR>        workspace root (default: .)
    --config <FILE>     analyzer config (default: <root>/analyzer.toml)
    --format <FMT>      output format: human | json (default: human)
    --out <FILE>        also write the report to FILE
    --list-lints        print the lint catalog and exit
    --write-baseline    rewrite the [[baseline]] section of the config to
                        match current findings (the ratchet update)
    -h, --help          print this help
";

struct Cli {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
    list_lints: bool,
    write_baseline: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        config: None,
        format: Format::Human,
        out: None,
        list_lints: false,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => cli.root = take_value(&mut args, "--root")?.into(),
            "--config" => cli.config = Some(take_value(&mut args, "--config")?.into()),
            "--format" => {
                cli.format = match take_value(&mut args, "--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?} (human|json)")),
                }
            }
            "--out" => cli.out = Some(take_value(&mut args, "--out")?.into()),
            "--list-lints" => cli.list_lints = true,
            "--write-baseline" => cli.write_baseline = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cli)
}

fn take_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn list_lints() {
    println!("{:<6} {:<22} {:<5} summary", "id", "slug", "sev");
    for s in CATALOG {
        println!(
            "{:<6} {:<22} {:<5} {}",
            s.id,
            s.slug,
            s.default_severity.label(),
            s.summary
        );
    }
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if cli.list_lints {
        list_lints();
        return ExitCode::SUCCESS;
    }

    let cfg_path = cli
        .config
        .clone()
        .unwrap_or_else(|| cli.root.join("analyzer.toml"));
    let cfg_src = match std::fs::read_to_string(&cfg_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", cfg_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&cfg_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match analyze(&cli.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if cli.write_baseline {
        let fresh = report.fresh_baseline();
        let head = baseline_header(&cfg_src);
        let rendered = format!("{head}{}", config::render_baseline(&fresh));
        if let Err(e) = std::fs::write(&cfg_path, &rendered) {
            eprintln!("error: cannot write {}: {e}", cfg_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} baseline entries ({} findings) to {}",
            fresh.len(),
            fresh.iter().map(|b| b.count).sum::<usize>(),
            cfg_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut gated: Vec<&findings::Finding> = report.new_findings.iter().collect();
    gated.extend(report.warnings.iter());
    let rendered = match cli.format {
        Format::Json => {
            let mut all: Vec<findings::Finding> = report.new_findings.clone();
            all.extend(report.warnings.iter().cloned());
            all.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
            findings::render_json(&all, &report.drift, report.baselined, report.clean())
        }
        Format::Human => {
            let mut out = String::new();
            for f in &report.new_findings {
                out.push_str(&f.render_human());
                out.push('\n');
            }
            for d in &report.drift {
                out.push_str(&d.render_human());
                out.push('\n');
            }
            for w in &report.warnings {
                out.push_str(&w.render_human());
                out.push('\n');
            }
            out.push_str(&format!(
                "{} files scanned, {} new finding(s), {} baseline drift(s), {} baselined, {} warning(s)\n",
                report.files_scanned,
                report.new_findings.len(),
                report.drift.len(),
                report.baselined,
                report.warnings.len()
            ));
            out
        }
    };

    print!("{rendered}");
    if let Some(path) = &cli.out {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Everything in the existing config up to the first `[[baseline]]` entry —
/// preserved verbatim when rewriting the baseline. Only a line that *is* a
/// `[[baseline]]` header counts; the token appearing inside a comment or
/// value does not start the baseline section.
fn baseline_header(src: &str) -> String {
    let mut pos = 0;
    for line in src.split_inclusive('\n') {
        if line.trim() == "[[baseline]]" {
            return src[..pos].to_string();
        }
        pos += line.len();
    }
    let mut s = src.trim_end().to_string();
    if !s.is_empty() {
        s.push_str("\n\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::baseline_header;

    #[test]
    fn header_ignores_baseline_token_in_comments() {
        let src = "# the [[baseline]] ratchet\n[lints.AD01]\nallow_crates = []\n\n[[baseline]]\nlint = \"AP02\"\npath = \"a.rs\"\ncount = 1\n";
        assert_eq!(
            baseline_header(src),
            "# the [[baseline]] ratchet\n[lints.AD01]\nallow_crates = []\n\n"
        );
    }

    #[test]
    fn header_without_baseline_gets_separator() {
        assert_eq!(
            baseline_header("[severity]\nAP03 = \"warn\"\n"),
            "[severity]\nAP03 = \"warn\"\n\n"
        );
        assert_eq!(baseline_header(""), "");
    }
}
