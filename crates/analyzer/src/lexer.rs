//! A hand-rolled, comment/string/cfg-aware Rust lexer.
//!
//! The lints in this crate are *lexical*: they match token sequences, not a
//! parsed AST. That is exactly enough to enforce the workspace contracts
//! (ban an identifier, require a registered string literal after a call
//! token) while staying dependency-free and fast. The lexer's job is to make
//! that token stream trustworthy:
//!
//! * comments (line, doc and nested block) never produce tokens — a banned
//!   name mentioned in prose is not a finding;
//! * string/char literals are single tokens — `"panic!"` inside a string is
//!   data, not a panic site — and raw strings (`r#"…"#`) are handled;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`);
//! * tokens under `#[cfg(test)]` items are flagged so test-only code can be
//!   exempted from the library-code lints;
//! * `// analyzer:allow(LINT) -- reason` escape comments are collected with
//!   the lines they govern.

use std::collections::BTreeMap;

/// Token classification — only as fine-grained as the lints need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// One punctuation character (`::` is two `Punct` tokens).
    Punct,
    /// String literal (plain, raw or byte); `text` holds the *content*.
    Str,
    /// Anything else that forms a unit: numbers, char literals, lifetimes.
    Other,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (for [`TokKind::Str`], the unquoted content).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
    /// Whether the token sits inside a `#[cfg(test)]` item.
    pub test: bool,
}

/// A per-line `analyzer:allow` escape directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Lint ids the directive names.
    pub lints: Vec<String>,
    /// Line of the comment itself.
    pub line: u32,
    /// 1-based column of the comment's `//`.
    pub col: u32,
    /// Whether a ` -- reason` trailer was present and non-empty.
    pub has_reason: bool,
    /// Set by the lint driver when the directive suppresses a finding.
    pub used: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// Escape directives found in line comments.
    pub allows: Vec<AllowDirective>,
    /// Raw source lines, for finding snippets.
    pub lines: Vec<String>,
}

impl Lexed {
    /// Lint ids allowed on `line` (a directive covers its own line and the
    /// next line, so both trailing and standalone comments work).
    pub fn allowed_on(&self, line: u32) -> BTreeMap<&str, usize> {
        let mut out = BTreeMap::new();
        for (i, a) in self.allows.iter().enumerate() {
            if a.line == line || a.line + 1 == line {
                for l in &a.lints {
                    out.entry(l.as_str()).or_insert(i);
                }
            }
        }
        out
    }

    /// The trimmed source text of a 1-based line, for human findings.
    pub fn snippet(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.trim())
            .unwrap_or("")
    }
}

/// Lex `src` into tokens, directives and lines.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed {
        lines: src.lines().map(str::to_string).collect(),
        ..Lexed::default()
    };
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0;
    let mut line: u32 = 1;

    // Char offset of the start of each 1-based line, for column math.
    let mut line_starts: Vec<usize> = vec![0];
    for (idx, &c) in b.iter().enumerate() {
        if c == '\n' {
            line_starts.push(idx + 1);
        }
    }
    let col_of = |idx: usize, line: u32| -> u32 {
        let start = line_starts.get(line as usize - 1).copied().unwrap_or(0);
        (idx.saturating_sub(start) + 1) as u32
    };

    macro_rules! bump_lines {
        ($ch:expr) => {
            if $ch == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_lines!(c);
            i += 1;
            continue;
        }
        // Line comment — plain `//` comments are scanned for allow
        // directives; doc comments (`///`, `//!`) are documentation and can
        // legitimately *mention* the escape syntax, so they never act as one.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let is_doc = i > start + 2 && (b[start + 2] == '/' || b[start + 2] == '!');
            if !is_doc {
                let text: String = b[start..i].iter().collect();
                scan_allow(&text, line, col_of(start, line), &mut out.allows);
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump_lines!(b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte string prefixes: r"", r#""#, b"", br#""#, rb…
        if (c == 'r' || c == 'b') && is_raw_or_byte_string(&b, i) {
            let (mut tok, ni, nl) = lex_prefixed_string(&b, i, line);
            tok.col = col_of(i, line);
            out.toks.push(tok);
            i = ni;
            line = nl;
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let (mut tok, ni, nl) = lex_plain_string(&b, i, line);
            tok.col = col_of(i, line);
            out.toks.push(tok);
            i = ni;
            line = nl;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let (ni, is_char) = scan_quote(&b, i);
            out.toks.push(Tok {
                kind: TokKind::Other,
                text: if is_char { "'char'" } else { "'lifetime" }.to_string(),
                line,
                col: col_of(i, line),
                test: false,
            });
            for &ch in &b[i..ni] {
                bump_lines!(ch);
            }
            i = ni;
            continue;
        }
        // Identifier / keyword.
        if c == '_' || c.is_alphabetic() {
            let start = i;
            while i < n && (b[i] == '_' || b[i].is_alphanumeric()) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
                col: col_of(start, line),
                test: false,
            });
            continue;
        }
        // Number (digits + alnum/_ suffix chars; `1.0` splits on the dot,
        // which is fine — no lint matches numeric tokens).
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (b[i] == '_' || b[i].is_alphanumeric()) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Other,
                text: b[start..i].iter().collect(),
                line,
                col: col_of(start, line),
                test: false,
            });
            continue;
        }
        // Single punctuation character.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col: col_of(i, line),
            test: false,
        });
        i += 1;
    }

    mark_cfg_test(&mut out.toks);
    out
}

/// Whether position `i` (at `r`/`b`) starts a raw or byte string literal.
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    // Don't treat identifiers like `rate`/`bytes` as prefixes: the previous
    // scan already consumed identifiers, so `i` only points at `r`/`b` when
    // a *fresh* token starts here. Check the characters that follow.
    let mut j = i;
    // Up to two prefix letters (r, b, br, rb).
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') && j - i < 2 {
        j += 1;
    }
    if j < b.len() && b[j] == '"' {
        return true;
    }
    // Raw strings may carry `#`s between prefix and quote.
    let has_r = b[i..j].contains(&'r');
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    has_r && j < b.len() && b[j] == '"'
}

/// Lex a string literal with an `r`/`b` prefix starting at `i`.
fn lex_prefixed_string(b: &[char], i: usize, mut line: u32) -> (Tok, usize, u32) {
    let start_line = line;
    let mut j = i;
    let mut raw = false;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') {
        raw |= b[j] == 'r';
        j += 1;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == '"');
    j += 1; // opening quote
    let content_start = j;
    loop {
        if j >= b.len() {
            break;
        }
        let c = b[j];
        if c == '\n' {
            line += 1;
        }
        if c == '\\' && !raw {
            j += 2;
            continue;
        }
        if c == '"' {
            // Raw strings close only on `"` + the right number of `#`s.
            let close = (0..hashes).all(|k| b.get(j + 1 + k) == Some(&'#'));
            if close {
                let text: String = b[content_start..j].iter().collect();
                return (
                    Tok {
                        kind: TokKind::Str,
                        text,
                        line: start_line,
                        col: 0, // the caller knows the start offset
                        test: false,
                    },
                    j + 1 + hashes,
                    line,
                );
            }
        }
        j += 1;
    }
    // Unterminated literal: emit what we have.
    (
        Tok {
            kind: TokKind::Str,
            text: b[content_start..].iter().collect(),
            line: start_line,
            col: 0,
            test: false,
        },
        b.len(),
        line,
    )
}

/// Lex a plain `"…"` literal starting at the opening quote.
fn lex_plain_string(b: &[char], i: usize, mut line: u32) -> (Tok, usize, u32) {
    let start_line = line;
    let mut j = i + 1;
    let mut text = String::new();
    while j < b.len() {
        let c = b[j];
        if c == '\\' && j + 1 < b.len() {
            // Keep escapes verbatim; lints only inspect name-shaped content.
            text.push(c);
            text.push(b[j + 1]);
            if b[j + 1] == '\n' {
                line += 1;
            }
            j += 2;
            continue;
        }
        if c == '"' {
            return (
                Tok {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                    col: 0, // the caller knows the start offset
                    test: false,
                },
                j + 1,
                line,
            );
        }
        if c == '\n' {
            line += 1;
        }
        text.push(c);
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Str,
            text,
            line: start_line,
            col: 0,
            test: false,
        },
        b.len(),
        line,
    )
}

/// Scan past a `'…` at `i`: returns (next index, was-a-char-literal).
fn scan_quote(b: &[char], i: usize) -> (usize, bool) {
    let n = b.len();
    // Escaped char literal: '\n', '\u{…}', '\''.
    if i + 1 < n && b[i + 1] == '\\' {
        let mut j = i + 2;
        while j < n && b[j] != '\'' {
            j += 1;
        }
        return ((j + 1).min(n), true);
    }
    // 'x' — a one-char literal.
    if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
        return (i + 3, true);
    }
    // Lifetime: consume the identifier after the quote.
    let mut j = i + 1;
    while j < n && (b[j] == '_' || b[j].is_alphanumeric()) {
        j += 1;
    }
    (j.max(i + 1), false)
}

/// Parse `analyzer:allow(L1, L2) -- reason` out of a line comment.
fn scan_allow(comment: &str, line: u32, col: u32, out: &mut Vec<AllowDirective>) {
    const NEEDLE: &str = "analyzer:allow(";
    let Some(pos) = comment.find(NEEDLE) else {
        return;
    };
    let rest = &comment[pos + NEEDLE.len()..];
    let Some(close) = rest.find(')') else {
        out.push(AllowDirective {
            lints: Vec::new(),
            line,
            col,
            has_reason: false,
            used: false,
        });
        return;
    };
    let lints: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let trailer = &rest[close + 1..];
    let has_reason = trailer
        .split_once("--")
        .map(|(_, reason)| !reason.trim().is_empty())
        .unwrap_or(false);
    out.push(AllowDirective {
        lints,
        line,
        col,
        has_reason,
        used: false,
    });
}

/// Mark tokens inside `#[cfg(test)]` items (and `#[cfg(any(test, …))]`,
/// but *not* `#[cfg(not(test))]`) as test tokens.
///
/// The scan is purely structural: after a test-cfg attribute, any further
/// attributes are skipped, then the next item is consumed — up to a `;`
/// before any brace, or to the matching `}` of the first `{` otherwise.
fn mark_cfg_test(toks: &mut [Tok]) {
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test)) = attr_span(toks, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any stacked attributes after the cfg(test) one.
        let mut j = attr_end;
        while j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "#" {
            match attr_span(toks, j) {
                Some((end, _)) => j = end,
                None => break,
            }
        }
        // Consume the item the attribute applies to.
        let item_start = j;
        let mut depth = 0usize;
        let mut entered = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        depth += 1;
                        entered = true;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    ";" if !entered => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        for t in &mut toks[item_start..j] {
            t.test = true;
        }
        i = j;
    }
}

/// If `i` points at `#` opening an attribute, return (index past the closing
/// `]`, attribute-is-a-test-cfg).
fn attr_span(toks: &[Tok], i: usize) -> Option<(usize, bool)> {
    let mut j = i + 1;
    // Inner attribute `#![…]`.
    if j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "!" {
        j += 1;
    }
    if !(j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "[") {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct if t.text == "[" => depth += 1,
            TokKind::Punct if t.text == "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, saw_cfg && saw_test && !saw_not));
                }
            }
            TokKind::Ident => match t.text.as_str() {
                "cfg" => saw_cfg = true,
                "test" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            },
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_produce_no_tokens() {
        let src = "// Instant::now()\n/* HashMap /* nested */ still comment */ let x = 1;";
        assert_eq!(idents(src), vec!["let", "x"]);
    }

    #[test]
    fn strings_are_single_tokens() {
        let l = lex(r##"let s = "panic!(\"no\")"; let r = r#"..raw "quote".."#; "##);
        let strs: Vec<&Tok> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].text.contains("panic!"));
        assert!(strs[1].text.contains("raw \"quote\""));
        // The panic! inside the string never becomes an identifier.
        assert!(!l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "panic"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let l = lex(src);
        assert!(l.toks.iter().any(|t| t.text == "'lifetime"));
        assert!(l.toks.iter().any(|t| t.text == "'char'"));
        assert!(l.toks.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn cfg_test_marks_the_whole_module() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn lib2() {}";
        let l = lex(src);
        let unwrap = l
            .toks
            .iter()
            .find(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(unwrap.test);
        let lib2 = l
            .toks
            .iter()
            .find(|t| t.text == "lib2")
            .expect("lib2 token");
        assert!(!lib2.test);
    }

    #[test]
    fn cfg_not_test_is_library_code() {
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }";
        let l = lex(src);
        let unwrap = l
            .toks
            .iter()
            .find(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(!unwrap.test);
    }

    #[test]
    fn cfg_test_on_statement_items() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}";
        let l = lex(src);
        let bar = l.toks.iter().find(|t| t.text == "bar").expect("bar token");
        assert!(bar.test);
        let lib = l.toks.iter().find(|t| t.text == "lib").expect("lib token");
        assert!(!lib.test);
    }

    #[test]
    fn allow_directives_parse() {
        let src = "// analyzer:allow(AP02, AD01) -- invariant holds\nx.unwrap();\n// analyzer:allow(AP01)\ny();";
        let l = lex(src);
        assert_eq!(l.allows.len(), 2);
        assert_eq!(l.allows[0].lints, vec!["AP02", "AD01"]);
        assert!(l.allows[0].has_reason);
        assert!(!l.allows[1].has_reason);
        assert!(l.allowed_on(2).contains_key("AP02"));
        assert!(!l.allowed_on(2).contains_key("AP01"));
    }

    #[test]
    fn doc_comments_never_act_as_escapes() {
        let src = "/// use `// analyzer:allow(AP02) -- why` to escape\n//! analyzer:allow(AD01) -- docs\nfn f() {}";
        let l = lex(src);
        assert!(l.allows.is_empty());
    }

    #[test]
    fn columns_are_one_based_char_offsets() {
        let src = "let x = now();\n    y.unwrap();\nlet s = \"lit\";";
        let l = lex(src);
        let now = l.toks.iter().find(|t| t.text == "now").expect("now");
        assert_eq!((now.line, now.col), (1, 9));
        let unwrap = l.toks.iter().find(|t| t.text == "unwrap").expect("unwrap");
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
        let lit = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("string");
        assert_eq!((lit.line, lit.col), (3, 9), "string col is the open quote");
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"a\nb\";\nlet t = 1;";
        let l = lex(src);
        let t = l.toks.iter().find(|t| t.text == "t").expect("t token");
        assert_eq!(t.line, 3);
    }
}
