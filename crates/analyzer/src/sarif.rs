//! SARIF 2.1.0 output — the format CI services ingest to surface findings
//! as inline annotations on changed lines.
//!
//! The emission is hand-rolled (the analyzer is dependency-free) and
//! deterministic: rules come from [`crate::lints::CATALOG`] in catalog
//! order, results in the driver's (path, line, lint) order, so two runs
//! over the same tree produce byte-identical SARIF — the same contract the
//! JSON format honours.

use crate::findings::{json_escape, BaselineDrift, Finding, Severity};
use crate::lints::CATALOG;

/// SARIF severity level for a resolved finding severity.
fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Warn => "warning",
        Severity::Deny => "error",
    }
}

/// Render findings and baseline drift as a SARIF 2.1.0 log. Drift entries
/// become results against their lint's rule, anchored at the file's first
/// line (drift is a per-file count, not a site).
pub fn render(findings: &[Finding], drift: &[BaselineDrift]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"alexa-analyzer\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        json_escape(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("          \"rules\": [\n");
    for (i, spec) in CATALOG.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            spec.id,
            json_escape(spec.slug),
            json_escape(spec.summary),
            if i + 1 < CATALOG.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let total = findings.len() + drift.len();
    let mut emitted = 0usize;
    let mut push_result = |out: &mut String,
                           rule: &str,
                           lvl: &str,
                           msg: &str,
                           uri: &str,
                           line: u32,
                           col: u32| {
        emitted += 1;
        out.push_str(&format!(
                "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}{}\n",
                json_escape(rule),
                lvl,
                json_escape(msg),
                json_escape(uri),
                line.max(1),
                col.max(1),
                if emitted < total { "," } else { "" }
            ));
    };
    for f in findings {
        push_result(
            &mut out,
            f.lint,
            level(f.severity),
            &f.message,
            &f.path,
            f.line,
            f.col,
        );
    }
    for d in drift {
        push_result(&mut out, &d.lint, "error", &d.render_human(), &d.path, 1, 1);
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_carries_rules_results_and_clamped_locations() {
        let findings = vec![Finding {
            lint: "AD01",
            severity: Severity::Deny,
            path: "crates/demo/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            snippet: String::new(),
            message: "wall-clock type `Instant`".to_string(),
        }];
        let drift = vec![BaselineDrift {
            lint: "AP02".to_string(),
            path: "crates/demo/src/old.rs".to_string(),
            expected: 2,
            actual: 1,
        }];
        let s = render(&findings, &drift);
        assert!(s.contains("\"version\": \"2.1.0\""));
        for spec in CATALOG {
            assert!(
                s.contains(&format!("\"id\": \"{}\"", spec.id)),
                "{}",
                spec.id
            );
        }
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("\"startColumn\": 9"));
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("baseline is stale"), "drift folds into results");
        // Deterministic: same input, same bytes.
        assert_eq!(s, render(&findings, &drift));
    }

    #[test]
    fn empty_report_is_valid_and_deterministic() {
        let s = render(&[], &[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }
}
