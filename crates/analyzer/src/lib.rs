//! `alexa-analyzer` — a workspace-wide determinism, panic-safety and
//! observability-naming lint pass.
//!
//! The reproduction's core invariants (fixed seed ⇒ byte-identical reports
//! for any worker count or fault profile; no panics in library crates;
//! schedule-independent trace names) are enforced *dynamically* by the
//! digest test matrix — which only catches violations on exercised paths,
//! minutes after they land. This crate enforces them *statically*, in under
//! a second, over every line of the workspace:
//!
//! * **D-lints** (`AD0x`) — determinism: no wall clocks, no ambient
//!   entropy, no unordered collections in report-rendering crates, no
//!   thread spawning outside the deterministic execution engine.
//! * **P-lints** (`AP0x`) — panic safety: no `unwrap`/`expect`/`panic!` in
//!   non-test library code; typed `Result`s instead.
//! * **O-lints** (`AO0x`) — observability naming: span/stage/counter names
//!   must be `dotted.lowercase` and declared in the single-source registry,
//!   and `fault.*` names must match declared fault channels.
//!
//! Pre-existing findings live in a checked-in `analyzer.toml` **baseline**
//! that works as a ratchet: any *new* finding fails, and any baseline entry
//! that no longer matches reality fails too, so the debt can only shrink.
//! Individual sites carry `// analyzer:allow(LINT) -- reason` escapes.
//!
//! The checks are lexical (a hand-rolled comment/string/cfg-aware lexer in
//! [`lexer`]), not type-aware: that is exactly enough for these contracts,
//! with zero dependencies and sub-second latency. See DESIGN.md §11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod registry;

pub use config::{BaselineEntry, Config, ConfigError};
pub use findings::{BaselineDrift, Finding, Severity};
pub use lints::{FileCtx, LintSpec, CATALOG};
pub use registry::Registry;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The outcome of one analysis run.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// Deny findings *not* covered by the baseline, in (path, line) order.
    pub new_findings: Vec<Finding>,
    /// Warn findings (advisory, never gate).
    pub warnings: Vec<Finding>,
    /// Baseline entries whose counts no longer match.
    pub drift: Vec<BaselineDrift>,
    /// How many deny findings the baseline absorbed.
    pub baselined: usize,
    /// Files scanned.
    pub files_scanned: usize,
    /// The actual per-(lint, path) deny counts — input for `--write-baseline`.
    pub counts: BTreeMap<(String, String), usize>,
}

impl AnalysisReport {
    /// Whether the gate passes: no new findings, no baseline drift.
    pub fn clean(&self) -> bool {
        self.new_findings.is_empty() && self.drift.is_empty()
    }

    /// The ratcheted baseline that matches current reality.
    pub fn fresh_baseline(&self) -> Vec<BaselineEntry> {
        self.counts
            .iter()
            .map(|((lint, path), &count)| BaselineEntry {
                lint: lint.clone(),
                path: path.clone(),
                count,
            })
            .collect()
    }
}

/// A fatal analysis error (I/O, config) — reported as one line, exit 2.
#[derive(Debug)]
pub struct AnalyzerError {
    /// One-line description.
    pub message: String,
}

impl std::fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for AnalyzerError {}

impl From<ConfigError> for AnalyzerError {
    fn from(e: ConfigError) -> Self {
        AnalyzerError {
            message: e.to_string(),
        }
    }
}

impl From<registry::RegistryError> for AnalyzerError {
    fn from(e: registry::RegistryError) -> Self {
        AnalyzerError {
            message: e.to_string(),
        }
    }
}

/// Path components whose subtrees are never linted: generated output and
/// test/bench/example code (the P/D contracts govern library code; analyzer
/// fixtures live under `tests/` and *must* stay unscanned).
const SKIP_DIRS: &[&str] = &["target", "tests", "benches", "examples", "fixtures", ".git"];

/// Analyze the workspace under `root` with the given configuration.
pub fn analyze(root: &Path, config: &Config) -> Result<AnalysisReport, AnalyzerError> {
    let reg = Registry::load(root)?;
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files).map_err(|e| AnalyzerError {
        message: format!("cannot walk {}: {e}", root.join("crates").display()),
    })?;
    files.sort();

    let mut report = AnalysisReport::default();
    let mut all_findings: Vec<Finding> = Vec::new();

    // Registry self-check: every declared obs name must be well-shaped, and
    // declared fault.* names must match the fault crate's channels.
    for name in &reg.obs_names {
        let mut push = |lint: &'static str, line: u32, message: String| {
            all_findings.push(Finding {
                lint,
                severity: Severity::Deny,
                path: registry::OBS_NAMES_PATH.to_string(),
                line,
                snippet: format!("\"{name}\""),
                message,
            });
        };
        if !lints::is_dotted_lowercase(name) {
            push(
                "AO01",
                0,
                format!("registry name {name:?} is not dotted.lowercase"),
            );
        }
        lints::check_fault_name(name, &reg, 0, &mut push);
    }

    for path in files {
        let rel = rel_path(root, &path);
        let src = std::fs::read_to_string(&path).map_err(|e| AnalyzerError {
            message: format!("cannot read {rel}: {e}"),
        })?;
        let mut lexed = lexer::lex(&src);
        let ctx = classify(&rel);
        report.files_scanned += 1;

        let mut raw = Vec::new();
        lints::run_lints(&lexed, &ctx, config, &reg, &mut raw);

        // Apply per-site escapes, tracking which directives fired.
        let mut used = vec![false; lexed.allows.len()];
        raw.retain(|f| {
            if let Some(&idx) = lexed.allowed_on(f.line).get(f.lint) {
                used[idx] = true;
                false
            } else {
                true
            }
        });
        for (i, a) in lexed.allows.iter_mut().enumerate() {
            a.used = used[i];
        }

        // Escape hygiene: escapes must carry a reason and must fire.
        for a in &lexed.allows {
            if !a.has_reason {
                raw.push(Finding {
                    lint: "AX02",
                    severity: Severity::Deny,
                    path: rel.clone(),
                    line: a.line,
                    snippet: lexed.snippet(a.line).to_string(),
                    message: "analyzer:allow without a `-- reason` trailer".to_string(),
                });
            } else if !a.used {
                raw.push(Finding {
                    lint: "AX01",
                    severity: Severity::Deny, // resolved below
                    path: rel.clone(),
                    line: a.line,
                    snippet: lexed.snippet(a.line).to_string(),
                    message: format!(
                        "analyzer:allow({}) suppresses no finding — delete it",
                        a.lints.join(", ")
                    ),
                });
            }
        }
        all_findings.extend(raw);
    }

    // Resolve severities, split warn/deny, apply the baseline ratchet.
    all_findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    let mut deny_by_key: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for mut f in all_findings {
        f.severity = config.severity_of(f.lint);
        match f.severity {
            Severity::Warn => report.warnings.push(f),
            Severity::Deny => deny_by_key
                .entry((f.lint.to_string(), f.path.clone()))
                .or_default()
                .push(f),
        }
    }

    for ((lint, path), group) in &deny_by_key {
        report
            .counts
            .insert((lint.clone(), path.clone()), group.len());
        let allowed = config.baseline_count(lint, path);
        if group.len() == allowed {
            report.baselined += group.len();
        } else {
            report.drift.push(BaselineDrift {
                lint: lint.clone(),
                path: path.clone(),
                expected: allowed,
                actual: group.len(),
            });
            if group.len() > allowed {
                // Surface the individual sites so the CI log carries
                // file:line for the new finding(s).
                report.new_findings.extend(group.iter().cloned());
            }
        }
    }
    // Baseline entries for files that now have zero findings (or vanished).
    for b in &config.baseline {
        if !deny_by_key.contains_key(&(b.lint.clone(), b.path.clone())) {
            report.drift.push(BaselineDrift {
                lint: b.lint.clone(),
                path: b.path.clone(),
                expected: b.count,
                actual: 0,
            });
        }
    }
    report
        .drift
        .sort_by(|a, b| (&a.path, &a.lint).cmp(&(&b.path, &b.lint)));
    Ok(report)
}

/// Load `analyzer.toml` from `root` and run [`analyze`].
pub fn analyze_with_default_config(root: &Path) -> Result<(Config, AnalysisReport), AnalyzerError> {
    let cfg_path = root.join("analyzer.toml");
    let src = std::fs::read_to_string(&cfg_path).map_err(|e| AnalyzerError {
        message: format!("cannot read {}: {e}", cfg_path.display()),
    })?;
    let config = Config::parse(&src)?;
    let report = analyze(root, &config)?;
    Ok((config, report))
}

/// Recursively collect `.rs` files, skipping [`SKIP_DIRS`] subtrees.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative path with forward slashes (stable across platforms, so
/// baselines and golden files are portable).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Derive the lint context from a repo-relative path.
fn classify(rel: &str) -> FileCtx {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        String::new()
    };
    let is_bin = rel.ends_with("src/main.rs") || rel.contains("/src/bin/");
    FileCtx {
        rel_path: rel.to_string(),
        crate_name,
        is_bin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_extracts_crate_and_bin() {
        let c = classify("crates/stats/src/bootstrap.rs");
        assert_eq!(c.crate_name, "stats");
        assert!(!c.is_bin);
        let b = classify("crates/bench/src/bin/repro.rs");
        assert_eq!(b.crate_name, "bench");
        assert!(b.is_bin);
        let m = classify("crates/analyzer/src/main.rs");
        assert!(m.is_bin);
    }
}
