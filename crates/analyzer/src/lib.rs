//! `alexa-analyzer` — a workspace-wide determinism, panic-safety and
//! observability-naming lint pass.
//!
//! The reproduction's core invariants (fixed seed ⇒ byte-identical reports
//! for any worker count or fault profile; no panics in library crates;
//! schedule-independent trace names) are enforced *dynamically* by the
//! digest test matrix — which only catches violations on exercised paths,
//! minutes after they land. This crate enforces them *statically*, in under
//! a second, over every line of the workspace:
//!
//! * **D-lints** (`AD0x`) — determinism: no wall clocks, no ambient
//!   entropy, no unordered collections in report-rendering crates, no
//!   thread spawning outside the deterministic execution engine.
//! * **P-lints** (`AP0x`) — panic safety: no `unwrap`/`expect`/`panic!` in
//!   non-test library code; typed `Result`s instead.
//! * **O-lints** (`AO0x`) — observability naming: span/stage/counter names
//!   must be `dotted.lowercase` and declared in the single-source registry,
//!   and `fault.*` names must match declared fault channels.
//! * **S-lints** (`AS0x`) — cross-file *semantic* checks over a lexical
//!   symbol index and call graph ([`symbols`], [`callgraph`]): determinism
//!   taint from committed surfaces (AS01), wire-schema drift (AS02),
//!   registry liveness (AS03) and the exit-code contract (AS04).
//!
//! Pre-existing findings live in a checked-in `analyzer.toml` **baseline**
//! that works as a ratchet: any *new* finding fails, and any baseline entry
//! that no longer matches reality fails too, so the debt can only shrink.
//! Individual sites carry `// analyzer:allow(LINT) -- reason` escapes.
//!
//! The checks are lexical (a hand-rolled comment/string/cfg-aware lexer in
//! [`lexer`]), not type-aware: that is exactly enough for these contracts,
//! with zero dependencies and sub-second latency. Per-file work is cached
//! under a content hash ([`cache`]); the semantic lints always recompute
//! over the full summary set. See DESIGN.md §11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod callgraph;
pub mod config;
pub mod findings;
pub mod fix;
pub mod lexer;
pub mod lints;
pub mod registry;
pub mod sarif;
pub mod symbols;

pub use config::{BaselineEntry, Config, ConfigError};
pub use findings::{BaselineDrift, Finding, Severity};
pub use fix::FixOutcome;
pub use lints::{FileCtx, LintSpec, CATALOG};
pub use registry::Registry;
pub use symbols::FileSummary;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The outcome of one analysis run.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// Deny findings *not* covered by the baseline, in (path, line) order.
    pub new_findings: Vec<Finding>,
    /// Warn findings (advisory, never gate).
    pub warnings: Vec<Finding>,
    /// Baseline entries whose counts no longer match.
    pub drift: Vec<BaselineDrift>,
    /// How many deny findings the baseline absorbed.
    pub baselined: usize,
    /// Files scanned.
    pub files_scanned: usize,
    /// Files whose per-file summary came from the incremental cache.
    pub cache_hits: usize,
    /// The actual per-(lint, path) deny counts — input for `--write-baseline`.
    pub counts: BTreeMap<(String, String), usize>,
}

impl AnalysisReport {
    /// Whether the gate passes: no new findings, no baseline drift.
    pub fn clean(&self) -> bool {
        self.new_findings.is_empty() && self.drift.is_empty()
    }

    /// The ratcheted baseline that matches current reality.
    pub fn fresh_baseline(&self) -> Vec<BaselineEntry> {
        self.counts
            .iter()
            .map(|((lint, path), &count)| BaselineEntry {
                lint: lint.clone(),
                path: path.clone(),
                count,
            })
            .collect()
    }
}

/// Knobs for [`analyze_with`].
#[derive(Debug, Default)]
pub struct AnalyzeOpts {
    /// Directory for the incremental per-file summary cache (the CLI uses
    /// `<root>/target/analyzer`). `None` disables caching entirely.
    pub cache_dir: Option<PathBuf>,
}

/// A fatal analysis error (I/O, config) — reported as one line, exit 2.
#[derive(Debug)]
pub struct AnalyzerError {
    /// One-line description.
    pub message: String,
}

impl std::fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for AnalyzerError {}

impl From<ConfigError> for AnalyzerError {
    fn from(e: ConfigError) -> Self {
        AnalyzerError {
            message: e.to_string(),
        }
    }
}

impl From<registry::RegistryError> for AnalyzerError {
    fn from(e: registry::RegistryError) -> Self {
        AnalyzerError {
            message: e.to_string(),
        }
    }
}

/// Path components whose subtrees are never linted: generated output and
/// test/bench/example code (the P/D contracts govern library code; analyzer
/// fixtures live under `tests/` and *must* stay unscanned).
const SKIP_DIRS: &[&str] = &["target", "tests", "benches", "examples", "fixtures", ".git"];

/// Analyze the workspace under `root` with the given configuration and no
/// cache. See [`analyze_with`].
pub fn analyze(root: &Path, config: &Config) -> Result<AnalysisReport, AnalyzerError> {
    analyze_with(root, config, &AnalyzeOpts::default())
}

/// Analyze the workspace under `root`: per-file lexical lints (cached under
/// a content hash when `opts.cache_dir` is set), then the cross-file
/// semantic lints over the combined summary set, then one unified escape /
/// severity / baseline-ratchet pass over every finding.
pub fn analyze_with(
    root: &Path,
    config: &Config,
    opts: &AnalyzeOpts,
) -> Result<AnalysisReport, AnalyzerError> {
    let reg = Registry::load(root)?;
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files).map_err(|e| AnalyzerError {
        message: format!("cannot walk {}: {e}", root.join("crates").display()),
    })?;
    files.sort();

    let wire_fns: std::collections::BTreeSet<String> = config
        .wire_pairs
        .iter()
        .flat_map(|p| [p.encode_fn.clone(), p.decode_fn.clone()])
        .collect();
    let key = cache::global_key(config, &reg);
    let mut cached = match &opts.cache_dir {
        Some(dir) => cache::load(dir, key),
        None => BTreeMap::new(),
    };

    let mut report = AnalysisReport::default();
    let mut summaries: Vec<FileSummary> = Vec::new();
    // Raw line content per file, for snippet backfill on semantic findings.
    let mut file_lines: BTreeMap<String, Vec<String>> = BTreeMap::new();

    for path in files {
        let rel = rel_path(root, &path);
        let src = std::fs::read_to_string(&path).map_err(|e| AnalyzerError {
            message: format!("cannot read {rel}: {e}"),
        })?;
        let hash = cache::fnv1a(src.as_bytes());
        report.files_scanned += 1;
        let summary = match cached.remove(&rel) {
            Some(s) if s.hash == hash => {
                report.cache_hits += 1;
                s
            }
            _ => {
                let lexed = lexer::lex(&src);
                let ctx = classify(&rel);
                let mut raw = Vec::new();
                lints::run_lints(&lexed, &ctx, config, &reg, &mut raw);
                symbols::summarize(&ctx, &lexed, hash, &wire_fns, raw)
            }
        };
        file_lines.insert(rel, src.lines().map(str::to_string).collect());
        summaries.push(summary);
    }

    // Cross-file semantic phase — always recomputed over the *full* summary
    // set (cached or fresh), so an edit to a callee file re-taints its
    // cached callers and a registry edit re-runs liveness everywhere.
    let mut semantic: Vec<Finding> = Vec::new();
    for entry in &reg.obs_names {
        // Registry self-check: every declared obs name must be well-shaped,
        // and declared fault.* names must match the fault crate's channels.
        let mut push = |lint: &'static str, line: u32, col: u32, message: String| {
            semantic.push(Finding {
                lint,
                severity: Severity::Deny,
                path: registry::OBS_NAMES_PATH.to_string(),
                line,
                col,
                snippet: String::new(),
                message,
            });
        };
        if !lints::is_dotted_lowercase(&entry.name) {
            push(
                "AO01",
                entry.line,
                entry.col,
                format!("registry name {:?} is not dotted.lowercase", entry.name),
            );
        }
        lints::check_fault_name(&entry.name, &reg, entry.line, entry.col, &mut push);
    }
    callgraph::as01_findings(&summaries, config, &mut semantic);
    lints::as02_findings(&summaries, config, &mut semantic);
    lints::as03_findings(&summaries, &reg, &mut semantic);

    let mut sem_by_path: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in semantic {
        sem_by_path.entry(f.path.clone()).or_default().push(f);
    }

    // Unified escape pass: per-file raw findings and semantic findings on
    // that file share the file's `analyzer:allow` directives.
    let mut all_findings: Vec<Finding> = Vec::new();
    for s in &summaries {
        let mut raw = s.findings.clone();
        if let Some(extra) = sem_by_path.remove(&s.rel) {
            raw.extend(extra);
        }
        let mut used = vec![false; s.allows.len()];
        raw.retain(|f| {
            if let Some(&idx) = allowed_on(&s.allows, f.line).get(f.lint) {
                used[idx] = true;
                false
            } else {
                true
            }
        });
        // Escape hygiene: escapes must carry a reason and must fire.
        for (i, a) in s.allows.iter().enumerate() {
            if !a.has_reason {
                raw.push(Finding {
                    lint: "AX02",
                    severity: Severity::Deny,
                    path: s.rel.clone(),
                    line: a.line,
                    col: a.col,
                    snippet: String::new(),
                    message: "analyzer:allow without a `-- reason` trailer".to_string(),
                });
            } else if !used[i] {
                raw.push(Finding {
                    lint: "AX01",
                    severity: Severity::Deny, // resolved below
                    path: s.rel.clone(),
                    line: a.line,
                    col: a.col,
                    snippet: String::new(),
                    message: format!(
                        "analyzer:allow({}) suppresses no finding — delete it",
                        a.lints.join(", ")
                    ),
                });
            }
        }
        all_findings.extend(raw);
    }
    // Semantic findings on paths without a summary (e.g. a misconfigured
    // AS02 file) cannot be escaped — they pass through directly.
    for (_, extra) in sem_by_path {
        all_findings.extend(extra);
    }

    // Snippet backfill for findings constructed without file content.
    for f in &mut all_findings {
        if f.snippet.is_empty() && f.line >= 1 {
            if let Some(lines) = file_lines.get(&f.path) {
                if let Some(l) = lines.get(f.line as usize - 1) {
                    f.snippet = l.trim().to_string();
                }
            }
        }
    }

    // Resolve severities, split warn/deny, apply the baseline ratchet.
    all_findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    let mut deny_by_key: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for mut f in all_findings {
        f.severity = config.severity_of(f.lint);
        match f.severity {
            Severity::Warn => report.warnings.push(f),
            Severity::Deny => deny_by_key
                .entry((f.lint.to_string(), f.path.clone()))
                .or_default()
                .push(f),
        }
    }

    for ((lint, path), group) in &deny_by_key {
        report
            .counts
            .insert((lint.clone(), path.clone()), group.len());
        let allowed = config.baseline_count(lint, path);
        if group.len() == allowed {
            report.baselined += group.len();
        } else {
            report.drift.push(BaselineDrift {
                lint: lint.clone(),
                path: path.clone(),
                expected: allowed,
                actual: group.len(),
            });
            if group.len() > allowed {
                // Surface the individual sites so the CI log carries
                // file:line for the new finding(s).
                report.new_findings.extend(group.iter().cloned());
            }
        }
    }
    // Baseline entries for files that now have zero findings (or vanished).
    for b in &config.baseline {
        if !deny_by_key.contains_key(&(b.lint.clone(), b.path.clone())) {
            report.drift.push(BaselineDrift {
                lint: b.lint.clone(),
                path: b.path.clone(),
                expected: b.count,
                actual: 0,
            });
        }
    }
    report
        .drift
        .sort_by(|a, b| (&a.path, &a.lint).cmp(&(&b.path, &b.lint)));

    // Persist the cache last, best-effort: a read-only target dir must not
    // fail the analysis, it just means a cold cache next run.
    if let Some(dir) = &opts.cache_dir {
        let _ = cache::store(dir, key, &summaries);
    }
    Ok(report)
}

/// Lint ids allowed on `line` by a file's directives (a directive covers
/// its own line and the next line, so both trailing and standalone
/// comments work), mapped to the directive index.
fn allowed_on(allows: &[lexer::AllowDirective], line: u32) -> BTreeMap<&str, usize> {
    let mut out = BTreeMap::new();
    for (i, a) in allows.iter().enumerate() {
        if a.line == line || a.line + 1 == line {
            for l in &a.lints {
                out.entry(l.as_str()).or_insert(i);
            }
        }
    }
    out
}

/// Load `analyzer.toml` from `root` and run [`analyze`].
pub fn analyze_with_default_config(root: &Path) -> Result<(Config, AnalysisReport), AnalyzerError> {
    let cfg_path = root.join("analyzer.toml");
    let src = std::fs::read_to_string(&cfg_path).map_err(|e| AnalyzerError {
        message: format!("cannot read {}: {e}", cfg_path.display()),
    })?;
    let config = Config::parse(&src)?;
    let report = analyze(root, &config)?;
    Ok((config, report))
}

/// Recursively collect `.rs` files, skipping [`SKIP_DIRS`] subtrees.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative path with forward slashes (stable across platforms, so
/// baselines and golden files are portable).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Derive the lint context from a repo-relative path.
fn classify(rel: &str) -> FileCtx {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.len() >= 2 && parts[0] == "crates" {
        parts[1].to_string()
    } else {
        String::new()
    };
    let is_bin = rel.ends_with("src/main.rs") || rel.contains("/src/bin/");
    FileCtx {
        rel_path: rel.to_string(),
        crate_name,
        is_bin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_extracts_crate_and_bin() {
        let c = classify("crates/stats/src/bootstrap.rs");
        assert_eq!(c.crate_name, "stats");
        assert!(!c.is_bin);
        let b = classify("crates/bench/src/bin/repro.rs");
        assert_eq!(b.crate_name, "bench");
        assert!(b.is_bin);
        let m = classify("crates/analyzer/src/main.rs");
        assert!(m.is_bin);
    }

    #[test]
    fn allowed_on_covers_own_and_next_line() {
        let allows = vec![lexer::AllowDirective {
            lints: vec!["AP02".to_string()],
            line: 4,
            col: 1,
            has_reason: true,
            used: false,
        }];
        assert!(allowed_on(&allows, 4).contains_key("AP02"));
        assert!(allowed_on(&allows, 5).contains_key("AP02"));
        assert!(!allowed_on(&allows, 6).contains_key("AP02"));
        assert!(!allowed_on(&allows, 3).contains_key("AP02"));
    }
}
