//! Workspace call graph and backward determinism-taint propagation (AS01).
//!
//! Linking is name-based and deliberately conservative, the same trade the
//! lexer makes: `Type::name(…)` resolves to functions in `impl Type` blocks,
//! `module::name(…)` to free functions (preferring the crate or file the
//! qualifier hints at), bare `name(…)` to free functions (same file, then
//! same crate, then anywhere), and `.name(…)` method calls to every impl
//! function of that name in the workspace — over-approximating receivers we
//! cannot type. `self.name(…)` narrows to the enclosing impl type when it
//! defines the method.
//!
//! One precision carve-out: a `.name(…)` call whose name collides with a
//! std container/iterator/option method ([`AMBIENT_METHODS`]) is dropped
//! rather than linked — `rows.iter()` is the slice method, and linking it
//! to every workspace `fn iter` taints the whole graph through one timing
//! helper. Colliding workspace methods are still linked when called as
//! `Type::name(…)`, `Self::name(…)`, or `self.name(…)` on a type that
//! defines them; only the untyped method-call edge is sacrificed.
//!
//! Taint then flows *backwards*: every function whose body holds a
//! wallclock/entropy/spawn token is a seed, and a breadth-first pass over
//! reverse call edges marks every transitive caller, remembering the next
//! hop so each finding can print its full witness chain down to the source
//! token.

use std::collections::{BTreeMap, VecDeque};

use crate::config::Config;
use crate::findings::{Finding, Severity};
use crate::symbols::{CallKind, FileSummary, FnSym};

/// A global function id: (summary index, fn index).
type Gid = (usize, usize);

/// The resolved call graph over a set of file summaries.
pub struct CallGraph<'a> {
    summaries: &'a [FileSummary],
    /// Flat list of every function, in (file, declaration) order.
    fns: Vec<Gid>,
    /// Flat index of each Gid (inverse of `fns`).
    index_of: BTreeMap<Gid, usize>,
    /// Free functions by name.
    free_by_name: BTreeMap<&'a str, Vec<usize>>,
    /// Impl/trait functions by (type, name).
    typed: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// Impl/trait functions by name alone (method-call candidates).
    methods_by_name: BTreeMap<&'a str, Vec<usize>>,
}

/// One step of an AS01 witness chain.
#[derive(Debug, Clone)]
pub struct ChainStep {
    /// Display name (`Type::name` or `name`).
    pub name: String,
    /// File of the definition.
    pub file: String,
    /// Line of the definition.
    pub line: u32,
}

/// The taint verdict for one entry function.
#[derive(Debug, Clone)]
pub struct Taint {
    /// The call chain from the entry function to the tainted leaf.
    pub chain: Vec<ChainStep>,
    /// Source class at the leaf (`wallclock`/`entropy`/`spawn`).
    pub source_kind: String,
    /// The source token text.
    pub source_token: String,
    /// File holding the source token.
    pub source_file: String,
    /// Line of the source token.
    pub source_line: u32,
}

impl<'a> CallGraph<'a> {
    /// Index every non-test function of every summary.
    pub fn build(summaries: &'a [FileSummary]) -> CallGraph<'a> {
        let mut g = CallGraph {
            summaries,
            fns: Vec::new(),
            index_of: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
            typed: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
        };
        for (si, s) in summaries.iter().enumerate() {
            for (fi, f) in s.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let id = g.fns.len();
                g.fns.push((si, fi));
                g.index_of.insert((si, fi), id);
                match &f.qual {
                    None => g.free_by_name.entry(&f.name).or_default().push(id),
                    Some(q) => {
                        g.typed.entry((q, &f.name)).or_default().push(id);
                        g.methods_by_name.entry(&f.name).or_default().push(id);
                    }
                }
            }
        }
        g
    }

    fn sym(&self, id: usize) -> &'a FnSym {
        let (si, fi) = self.fns[id];
        &self.summaries[si].fns[fi]
    }

    fn file_of(&self, id: usize) -> &'a FileSummary {
        &self.summaries[self.fns[id].0]
    }

    /// Candidate callees of one call site in function `caller`.
    fn resolve(&self, caller: usize, name: &str, kind: &CallKind) -> Vec<usize> {
        let empty: Vec<usize> = Vec::new();
        match kind {
            CallKind::Free => {
                let all = self.free_by_name.get(name).unwrap_or(&empty);
                let same_file: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&c| self.fns[c].0 == self.fns[caller].0)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let crate_name = &self.file_of(caller).crate_name;
                let same_crate: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&c| &self.file_of(c).crate_name == crate_name)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                all.clone()
            }
            CallKind::Qualified(q) => {
                // `Self::name` resolves against the caller's impl type.
                let q = if q == "Self" {
                    match &self.sym(caller).qual {
                        Some(t) => t.as_str(),
                        None => q.as_str(),
                    }
                } else {
                    q.as_str()
                };
                if q.starts_with(|c: char| c.is_ascii_uppercase()) {
                    return self.typed.get(&(q, name)).cloned().unwrap_or_default();
                }
                // Lowercase qualifier: a module or crate hint over free fns.
                let all = self.free_by_name.get(name).unwrap_or(&empty);
                if matches!(q, "self" | "crate" | "super") {
                    let crate_name = &self.file_of(caller).crate_name;
                    return all
                        .iter()
                        .copied()
                        .filter(|&c| &self.file_of(c).crate_name == crate_name)
                        .collect();
                }
                let hinted: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let f = self.file_of(c);
                        crate_hint_matches(q, &f.crate_name)
                            || f.rel.ends_with(&format!("/{q}.rs"))
                            || f.rel.contains(&format!("/{q}/"))
                    })
                    .collect();
                if hinted.is_empty() {
                    all.clone()
                } else {
                    hinted
                }
            }
            CallKind::MethodOnSelf => {
                if let Some(t) = &self.sym(caller).qual {
                    if let Some(v) = self.typed.get(&(t.as_str(), name)) {
                        return v.clone();
                    }
                }
                if AMBIENT_METHODS.contains(&name) {
                    return Vec::new();
                }
                self.methods_by_name.get(name).cloned().unwrap_or_default()
            }
            CallKind::Method => {
                if AMBIENT_METHODS.contains(&name) {
                    return Vec::new();
                }
                self.methods_by_name.get(name).cloned().unwrap_or_default()
            }
        }
    }

    /// Backward taint propagation: returns, for every tainted function, the
    /// next hop (callee id + call line) toward a source.
    fn propagate(&self) -> Vec<Option<(usize, u32)>> {
        let n = self.fns.len();
        // Forward edges, then reversed.
        let mut rev: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        for caller in 0..n {
            for call in &self.sym(caller).calls {
                for callee in self.resolve(caller, &call.name, &call.kind) {
                    if callee != caller {
                        rev[callee].push((caller, call.line));
                    }
                }
            }
        }
        let mut next: Vec<Option<(usize, u32)>> = vec![None; n];
        let mut tainted = vec![false; n];
        let mut queue = VecDeque::new();
        for (id, t) in tainted.iter_mut().enumerate() {
            if !self.sym(id).sources.is_empty() {
                *t = true;
                queue.push_back(id);
            }
        }
        while let Some(g) = queue.pop_front() {
            for &(caller, line) in &rev[g] {
                if !tainted[caller] {
                    tainted[caller] = true;
                    next[caller] = Some((g, line));
                    queue.push_back(caller);
                }
            }
        }
        // Encode taint-without-hop (a direct source) as Some((self, 0)).
        for id in 0..n {
            if tainted[id] && next[id].is_none() {
                next[id] = Some((id, 0));
            }
        }
        next
    }

    /// The witness chain for a tainted function, or `None` if untainted.
    fn chain_of(&self, id: usize, next: &[Option<(usize, u32)>]) -> Option<Taint> {
        next[id]?;
        let mut chain = Vec::new();
        let mut cur = id;
        loop {
            let sym = self.sym(cur);
            let file = self.file_of(cur);
            chain.push(ChainStep {
                name: sym.display_name(),
                file: file.rel.clone(),
                line: sym.line,
            });
            match next[cur] {
                Some((callee, _)) if callee != cur => cur = callee,
                _ => break,
            }
        }
        let leaf = self.sym(cur);
        let src = leaf.sources.first()?;
        Some(Taint {
            chain,
            source_kind: src.kind.clone(),
            source_token: src.token.clone(),
            source_file: self.file_of(cur).rel.clone(),
            source_line: src.line,
        })
    }
}

/// Method names that collide with std container/iterator/option/string
/// methods. An untyped `.name(…)` call with one of these names is almost
/// always the std method, so the linker drops the edge instead of linking
/// to every workspace impl fn of that name (see the module docs).
const AMBIENT_METHODS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_ref",
    "as_str",
    "chain",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "flush",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "peek",
    "pop",
    "position",
    "push",
    "read",
    "remove",
    "replace",
    "retain",
    "rev",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "starts_with",
    "sum",
    "take",
    "take_while",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "write",
    "zip",
];

/// Whether a lowercase path qualifier names this crate (`obs` or the lib
/// name `alexa_obs` both hint at `crates/obs`).
fn crate_hint_matches(q: &str, crate_name: &str) -> bool {
    q == crate_name || q.strip_prefix("alexa_") == Some(crate_name)
}

/// Run AS01 over the summaries: flag every public non-test function defined
/// under a configured entry path that transitively reaches a taint source,
/// with the full call chain in the message.
pub fn as01_findings(summaries: &[FileSummary], config: &Config, out: &mut Vec<Finding>) {
    if config.entry_paths.is_empty() {
        return;
    }
    let g = CallGraph::build(summaries);
    let next = g.propagate();
    for (id, &(si, fi)) in g.fns.iter().enumerate() {
        let s = &summaries[si];
        let f = &s.fns[fi];
        if !f.is_pub
            || !config
                .entry_paths
                .iter()
                .any(|p| s.rel.starts_with(p.as_str()))
        {
            continue;
        }
        let Some(taint) = g.chain_of(id, &next) else {
            continue;
        };
        let hops: Vec<String> = taint
            .chain
            .iter()
            .map(|c| format!("{} ({}:{})", c.name, c.file, c.line))
            .collect();
        out.push(Finding {
            lint: "AS01",
            severity: Severity::Deny,
            path: s.rel.clone(),
            line: f.line,
            col: f.col,
            snippet: String::new(),
            message: format!(
                "committed-surface fn `{}` transitively reaches {} source `{}` ({}:{}); call chain: {} -> `{}`",
                f.name,
                taint.source_kind,
                taint.source_token,
                taint.source_file,
                taint.source_line,
                hops.join(" -> "),
                taint.source_token,
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::FileCtx;
    use crate::symbols::summarize;
    use std::collections::BTreeSet;

    fn file(rel: &str, crate_name: &str, src: &str) -> FileSummary {
        let ctx = FileCtx {
            rel_path: rel.to_string(),
            crate_name: crate_name.to_string(),
            is_bin: false,
        };
        summarize(&ctx, &lex(src), 0, &BTreeSet::new(), Vec::new())
    }

    fn config(entry: &str) -> Config {
        let mut cfg = Config::default();
        cfg.entry_paths.insert(entry.to_string());
        cfg
    }

    #[test]
    fn taint_crosses_files_with_a_chain() {
        let summaries = vec![
            file(
                "crates/audit/src/analysis/render.rs",
                "audit",
                "pub fn render_into(out: &mut String) { let _ = stamp(); }\n\
                 fn stamp() -> u64 { clock::read() }\n\
                 pub fn render_static(out: &mut String) { out.push('x'); }\n",
            ),
            file(
                "crates/obs/src/clock.rs",
                "obs",
                "pub fn read() -> u64 { let _ = std::time::Instant::now(); 7 }\n",
            ),
        ];
        let mut out = Vec::new();
        as01_findings(&summaries, &config("crates/audit/src/analysis/"), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        let f = &out[0];
        assert_eq!(f.lint, "AS01");
        assert_eq!(f.path, "crates/audit/src/analysis/render.rs");
        assert_eq!(f.line, 1);
        assert!(f.message.contains("render_into"), "{}", f.message);
        assert!(
            f.message
                .contains("stamp (crates/audit/src/analysis/render.rs:2)"),
            "chain must carry intermediate hops: {}",
            f.message
        );
        assert!(
            f.message.contains("read (crates/obs/src/clock.rs:1)"),
            "{}",
            f.message
        );
        assert!(f.message.contains("wallclock"), "{}", f.message);
    }

    #[test]
    fn method_calls_link_to_impl_fns() {
        let summaries = vec![
            file(
                "crates/audit/src/wire.rs",
                "audit",
                "pub fn encode(r: &Recorder) { r.time(\"x\", || {}); }\n",
            ),
            file(
                "crates/obs/src/recorder.rs",
                "obs",
                "impl Recorder { pub fn time(&self) { let _ = Instant::now(); } }\n",
            ),
        ];
        let mut out = Vec::new();
        as01_findings(&summaries, &config("crates/audit/src/wire.rs"), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("Recorder::time"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn untainted_entries_and_non_entries_stay_silent() {
        let summaries = vec![
            file(
                "crates/audit/src/wire.rs",
                "audit",
                "pub fn pure() -> u64 { 7 }\n",
            ),
            // Tainted but not under an entry path, and not public.
            file(
                "crates/obs/src/clock.rs",
                "obs",
                "fn secret() { let _ = Instant::now(); }\n",
            ),
        ];
        let mut out = Vec::new();
        as01_findings(&summaries, &config("crates/audit/src/"), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn ambient_method_names_do_not_link() {
        let summaries = vec![
            file(
                "crates/audit/src/analysis/tables.rs",
                "audit",
                "pub fn table(rows: &[u64]) -> u64 { rows.iter().sum() }\n",
            ),
            // A workspace `iter` that reads the clock: linking `.iter()` to
            // it would taint every slice iteration in the workspace.
            file(
                "crates/bencher/src/lib.rs",
                "bencher",
                "impl Bencher { pub fn iter(&self) { let _ = Instant::now(); } }\n",
            ),
        ];
        let mut out = Vec::new();
        as01_findings(&summaries, &config("crates/audit/src/analysis/"), &mut out);
        assert!(out.is_empty(), "ambient `.iter()` must not link: {out:?}");
    }

    #[test]
    fn self_calls_prefer_the_enclosing_type() {
        let summaries = vec![file(
            "crates/audit/src/wire.rs",
            "audit",
            "impl Codec { pub fn encode(&self) { self.pure(); } fn pure(&self) {} }\n\
             impl Other { fn pure(&self) { let _ = Instant::now(); } }\n",
        )];
        let mut out = Vec::new();
        as01_findings(&summaries, &config("crates/audit/src/"), &mut out);
        assert!(
            out.is_empty(),
            "self.pure() must bind to Codec::pure, not the tainted Other::pure: {out:?}"
        );
    }
}
