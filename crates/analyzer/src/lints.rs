//! The lint catalog and the token-stream checks behind it.
//!
//! `CATALOG` is the **single source of truth** for the lint inventory: the
//! CLI's `--list-lints`, the JSON findings, and the DESIGN.md §11 catalog
//! (held in sync by a test) are all derived from it.

use crate::config::Config;
use crate::findings::{Finding, Severity};
use crate::lexer::{Lexed, Tok, TokKind};
use crate::registry::Registry;

/// One lint's identity and documentation.
#[derive(Debug, Clone, Copy)]
pub struct LintSpec {
    /// Stable id, used in baselines and `analyzer:allow(...)` escapes.
    pub id: &'static str,
    /// Human slug.
    pub slug: &'static str,
    /// Default severity (config can override).
    pub default_severity: Severity,
    /// One-line doc, shared verbatim by `--list-lints` and DESIGN.md.
    pub summary: &'static str,
}

/// Every lint the analyzer knows, in report order.
pub const CATALOG: &[LintSpec] = &[
    LintSpec {
        id: "AD01",
        slug: "wallclock",
        default_severity: Severity::Deny,
        summary: "wall-clock time source (Instant/SystemTime/UNIX_EPOCH) outside the sanctioned timing crates",
    },
    LintSpec {
        id: "AD02",
        slug: "entropy",
        default_severity: Severity::Deny,
        summary: "ambient entropy (thread_rng/from_entropy/OsRng/getrandom) — all randomness must come from an explicit seed",
    },
    LintSpec {
        id: "AD03",
        slug: "unordered-collection",
        default_severity: Severity::Deny,
        summary: "HashMap/HashSet in a crate that feeds reports or traces — iteration order would leak schedule noise; use BTreeMap/BTreeSet or sort before emitting",
    },
    LintSpec {
        id: "AD04",
        slug: "thread-spawn",
        default_severity: Severity::Deny,
        summary: "thread or process spawning (thread::spawn/scope/JoinHandle, process::Command) outside crates/exec — all parallelism goes through the deterministic execution backends",
    },
    LintSpec {
        id: "AD05",
        slug: "alloc-in-loop",
        default_severity: Severity::Deny,
        summary: ".clone()/format!/.to_string() inside a loop on a configured hot path — hoist the allocation or read the shared AnalysisIndex instead",
    },
    LintSpec {
        id: "AP01",
        slug: "panic-macro",
        default_severity: Severity::Deny,
        summary: "panic!/unreachable!/todo!/unimplemented! in non-test library code — return a typed error instead",
    },
    LintSpec {
        id: "AP02",
        slug: "unwrap",
        default_severity: Severity::Deny,
        summary: ".unwrap()/.expect() in non-test library code — propagate a typed Result or recover",
    },
    LintSpec {
        id: "AP03",
        slug: "index-unguarded",
        default_severity: Severity::Warn,
        summary: "slice/collection indexing in non-test library code — a heuristic nudge toward .get(); advisory only",
    },
    LintSpec {
        id: "AO01",
        slug: "obs-name",
        default_severity: Severity::Deny,
        summary: "observability span/stage/counter names must be dotted.lowercase and declared in the crates/obs names registry",
    },
    LintSpec {
        id: "AO02",
        slug: "fault-name",
        default_severity: Severity::Deny,
        summary: "fault.* observability names must match a declared fault channel label or ledger aggregate from crates/fault",
    },
    LintSpec {
        id: "AS01",
        slug: "determinism-taint",
        default_severity: Severity::Deny,
        summary: "a public function on a committed surface (report rendering, bundle writing, wire codecs) transitively reaches a wallclock/entropy/spawn source — the finding carries the full call chain",
    },
    LintSpec {
        id: "AS02",
        slug: "wire-schema-drift",
        default_severity: Severity::Deny,
        summary: "every field of a wire-paired struct must appear in both its encode and decode codec functions — a field missing from either silently drops data on the wire",
    },
    LintSpec {
        id: "AS03",
        slug: "registry-liveness",
        default_severity: Severity::Deny,
        summary: "every name declared in the crates/obs names registry must have at least one call site emitting it — dead registry entries are unchecked debt (the dual of AO01)",
    },
    LintSpec {
        id: "AS04",
        slug: "exit-code-contract",
        default_severity: Severity::Deny,
        summary: "process::exit/ExitCode literals in bin crates must stay inside the documented exit-code contract (default 0/2/3)",
    },
    LintSpec {
        id: "AX01",
        slug: "stale-allow",
        default_severity: Severity::Warn,
        summary: "an analyzer:allow escape that suppresses no finding — delete it",
    },
    LintSpec {
        id: "AX02",
        slug: "malformed-allow",
        default_severity: Severity::Deny,
        summary: "an analyzer:allow escape without a `-- reason` trailer — every escape must record why",
    },
];

/// Look up a lint by id.
pub fn spec(id: &str) -> Option<&'static LintSpec> {
    CATALOG.iter().find(|s| s.id == id)
}

/// Per-file context, derived from the path.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Repository-relative path, forward slashes.
    pub rel_path: String,
    /// The crate directory name under `crates/` (e.g. `stats`).
    pub crate_name: String,
    /// `src/bin/*` or `src/main.rs` — a binary target.
    pub is_bin: bool,
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ALLOC_METHODS: &[&str] = &["clone", "to_string"];
const UNWRAP_METHODS: &[&str] = &["unwrap", "expect"];
/// Wall-clock token shapes — shared by AD01 and the AS01 taint source set.
pub const WALLCLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];
/// Ambient-entropy token shapes — shared by AD02 and the AS01 source set.
pub const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];
const UNORDERED_IDENTS: &[&str] = &["HashMap", "HashSet"];
/// Keywords that can legally precede `[` without it being an index
/// expression (`let [a, b] = …`, `return [x]`, `match […]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "return", "match", "if", "else", "in", "mut", "ref", "move", "as", "break", "continue",
    "yield", "box", "dyn", "impl", "where", "for", "while", "loop", "fn", "const", "static",
];
/// Methods whose first string argument is an observability name.
const OBS_METHODS: &[&str] = &[
    "span",
    "stage",
    "add",
    "count",
    "shard",
    "section",
    "time",
    "volatile",
    "volatile_max",
];
/// Free functions whose first string argument is an observability name.
const OBS_FUNCTIONS: &[&str] = &["agg_time", "agg_count"];

/// Run every lint over one lexed file, appending raw findings (escape
/// directives and baselines are applied by the driver).
pub fn run_lints(
    lexed: &Lexed,
    ctx: &FileCtx,
    config: &Config,
    registry: &Registry,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    let mut push = |id: &'static str, line: u32, col: u32, message: String| {
        out.push(Finding {
            lint: id,
            severity: Severity::Deny, // resolved later by the driver
            path: ctx.rel_path.clone(),
            line,
            col,
            snippet: lexed.snippet(line).to_string(),
            message,
        });
    };

    let plints_apply = !ctx.is_bin && !config.panic_exempt.contains(&ctx.crate_name);
    let ordered_crate = config.ordered_crates.contains(&ctx.crate_name);
    let wallclock_ok = config.wallclock_allow.contains(&ctx.crate_name);
    let threads_ok = config.thread_allow.contains(&ctx.crate_name);
    let exit_codes = if ctx.is_bin {
        config.allowed_exit_codes()
    } else {
        Default::default()
    };
    let alloc_lint = config
        .alloc_paths
        .iter()
        .any(|p| ctx.rel_path.starts_with(p.as_str()));
    let in_loop = if alloc_lint {
        loop_body_map(toks)
    } else {
        Vec::new()
    };

    for (i, t) in toks.iter().enumerate() {
        if t.test {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                // AD01 — wall-clock sources.
                if !wallclock_ok && WALLCLOCK_IDENTS.contains(&name) {
                    push(
                        "AD01",
                        t.line,
                        t.col,
                        format!("wall-clock type `{name}` in crate `{}`", ctx.crate_name),
                    );
                }
                // AD02 — ambient entropy, everywhere.
                if ENTROPY_IDENTS.contains(&name) {
                    push(
                        "AD02",
                        t.line,
                        t.col,
                        format!("ambient entropy source `{name}`"),
                    );
                }
                // AD03 — unordered collections in report/trace crates.
                if ordered_crate && UNORDERED_IDENTS.contains(&name) {
                    push(
                        "AD03",
                        t.line,
                        t.col,
                        format!("`{name}` in ordered-output crate `{}`", ctx.crate_name),
                    );
                }
                // AD04 — thread or process spawning outside the exec engine.
                if !threads_ok
                    && (name == "JoinHandle"
                        || (matches!(name, "spawn" | "scope")
                            && prev_is(toks, i, "::")
                            && prev_ident_is(toks, i, "thread"))
                        || (name == "Command"
                            && prev_is(toks, i, "::")
                            && prev_ident_is(toks, i, "process")))
                {
                    push(
                        "AD04",
                        t.line,
                        t.col,
                        format!("parallelism primitive `{name}` outside crates/exec"),
                    );
                }
                // AP01 — panic macros in library code.
                if plints_apply && PANIC_MACROS.contains(&name) && next_is(toks, i, "!") {
                    push("AP01", t.line, t.col, format!("`{name}!` in library code"));
                }
                // AP02 — .unwrap()/.expect() in library code.
                if plints_apply
                    && UNWRAP_METHODS.contains(&name)
                    && prev_is(toks, i, ".")
                    && next_is(toks, i, "(")
                {
                    push(
                        "AP02",
                        t.line,
                        t.col,
                        format!("`.{name}()` in library code"),
                    );
                }
                // AD05 — per-iteration allocation on a configured hot path.
                if alloc_lint && in_loop.get(i).copied().unwrap_or(false) {
                    if ALLOC_METHODS.contains(&name)
                        && prev_is(toks, i, ".")
                        && next_is(toks, i, "(")
                    {
                        push(
                            "AD05",
                            t.line,
                            t.col,
                            format!("`.{name}()` inside a loop on a hot analysis path"),
                        );
                    } else if name == "format" && next_is(toks, i, "!") {
                        push(
                            "AD05",
                            t.line,
                            t.col,
                            "`format!` inside a loop on a hot analysis path".to_string(),
                        );
                    }
                }
                // AS04 — exit-status literals outside the documented
                // contract, in bin targets only.
                if ctx.is_bin
                    && next_is(toks, i, "(")
                    && ((name == "exit"
                        && prev_is(toks, i, "::")
                        && prev_ident_is(toks, i, "process"))
                        || (name == "from"
                            && prev_is(toks, i, "::")
                            && prev_ident_is(toks, i, "ExitCode")))
                {
                    check_exit_literals(toks, i + 2, &exit_codes, &mut push);
                }
                // AO01 — registered observability names, via free functions
                // (agg_time/agg_count) or recorder/log methods.
                let obs_call = (OBS_FUNCTIONS.contains(&name)
                    || (OBS_METHODS.contains(&name) && prev_is(toks, i, ".")))
                    && next_is(toks, i, "(");
                if obs_call {
                    check_obs_name(toks, i + 2, registry, &mut push);
                }
            }
            TokKind::Punct if t.text == "[" && plints_apply => {
                // AP03 — index expression heuristic: `expr[` where expr ends
                // in an identifier, `]` or `)`.
                if let Some(prev) = prev_sig(toks, i) {
                    let is_index = match prev.kind {
                        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                        TokKind::Punct => prev.text == "]" || prev.text == ")",
                        _ => false,
                    };
                    if is_index {
                        push(
                            "AP03",
                            t.line,
                            t.col,
                            "index expression — prefer .get() on fallible paths".to_string(),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// AS04: scan the argument tokens of an exit call (starting at the token
/// after the opening paren) for integer literals outside the allowed set.
/// Non-literal arguments (variables, helper calls) are out of lexical reach.
fn check_exit_literals(
    toks: &[Tok],
    mut j: usize,
    allowed: &std::collections::BTreeSet<String>,
    push: &mut impl FnMut(&'static str, u32, u32, String),
) {
    let mut depth = 1usize;
    let allowed_list: Vec<&str> = allowed.iter().map(String::as_str).collect();
    while depth > 0 {
        let Some(t) = toks.get(j) else { return };
        match t.kind {
            TokKind::Punct if t.text == "(" => depth += 1,
            TokKind::Punct if t.text == ")" => depth -= 1,
            TokKind::Other => {
                // Keep the leading digits: `1u8` and `1_0` normalize.
                let digits: String = t
                    .text
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '_')
                    .filter(|c| c.is_ascii_digit())
                    .collect();
                if !digits.is_empty()
                    && t.text.starts_with(|c: char| c.is_ascii_digit())
                    && !allowed.contains(&digits)
                {
                    push(
                        "AS04",
                        t.line,
                        t.col,
                        format!(
                            "exit status `{digits}` is outside the documented exit-code contract (allowed: {})",
                            allowed_list.join("/")
                        ),
                    );
                }
            }
            _ => {}
        }
        j += 1;
    }
}

/// Validate a string literal at token index `j` as an observability name
/// (shape + registry membership + fault.* consistency). Non-literal first
/// arguments (constants, format!) are out of lexical reach and skipped.
fn check_obs_name(
    toks: &[Tok],
    j: usize,
    registry: &Registry,
    push: &mut impl FnMut(&'static str, u32, u32, String),
) {
    let Some(tok) = toks.get(j) else { return };
    if tok.kind != TokKind::Str {
        return;
    }
    let name = tok.text.as_str();
    if !is_dotted_lowercase(name) {
        push(
            "AO01",
            tok.line,
            tok.col,
            format!("obs name {name:?} is not dotted.lowercase"),
        );
        return;
    }
    if !registry.has_obs_name(name) {
        push(
            "AO01",
            tok.line,
            tok.col,
            format!("obs name {name:?} is not declared in crates/obs/src/names.rs"),
        );
    }
    check_fault_name(name, registry, tok.line, tok.col, push);
}

/// AO02: a `fault.<x>` name must match a declared channel label or ledger
/// aggregate. Called both on call-site names and on registry entries.
pub fn check_fault_name(
    name: &str,
    registry: &Registry,
    line: u32,
    col: u32,
    push: &mut impl FnMut(&'static str, u32, u32, String),
) {
    let Some(suffix) = name.strip_prefix("fault.") else {
        return;
    };
    const AGGREGATES: &[&str] = &["injected", "retries", "losses"];
    if !AGGREGATES.contains(&suffix) && !registry.fault_channels.iter().any(|c| c == suffix) {
        push(
            "AO02",
            line,
            col,
            format!(
                "fault name {name:?}: `{suffix}` is neither a ledger aggregate nor a channel label declared in crates/fault"
            ),
        );
    }
}

/// AS02: every field of each configured wire-paired struct must appear (as
/// an identifier or string literal) in the bodies of both its encode and
/// decode functions. Findings land on the field's declaration line in the
/// struct file so `analyzer:allow` escapes can sit next to the field.
pub fn as02_findings(
    summaries: &[crate::symbols::FileSummary],
    config: &Config,
    out: &mut Vec<Finding>,
) {
    if config.wire_pairs.is_empty() {
        return;
    }
    let struct_file = summaries.iter().find(|s| s.rel == config.struct_file);
    let wire_file = summaries.iter().find(|s| s.rel == config.wire_file);
    let mut push = |path: &str, line: u32, col: u32, message: String| {
        out.push(Finding {
            lint: "AS02",
            severity: Severity::Deny,
            path: path.to_string(),
            line,
            col,
            snippet: String::new(),
            message,
        });
    };
    let (Some(sf), Some(wf)) = (struct_file, wire_file) else {
        let missing = if struct_file.is_none() {
            &config.struct_file
        } else {
            &config.wire_file
        };
        push(
            missing,
            0,
            0,
            format!(
                "AS02 is configured but `{missing}` was not scanned — check [lints.AS02] paths"
            ),
        );
        return;
    };
    for pair in &config.wire_pairs {
        let Some(st) = sf.structs.iter().find(|s| s.name == pair.struct_name) else {
            push(
                &sf.rel,
                0,
                0,
                format!(
                    "wire-paired struct `{}` not found in {} — check [lints.AS02] pairs",
                    pair.struct_name, sf.rel
                ),
            );
            continue;
        };
        for (role, fn_name) in [("encode", &pair.encode_fn), ("decode", &pair.decode_fn)] {
            let Some(f) = wf.fns.iter().find(|f| &f.name == fn_name) else {
                push(
                    &wf.rel,
                    0,
                    0,
                    format!(
                        "{role} fn `{fn_name}` for struct `{}` not found in {} — check [lints.AS02] pairs",
                        pair.struct_name, wf.rel
                    ),
                );
                continue;
            };
            for field in &st.fields {
                if !f.idents.contains(&field.name) {
                    push(
                        &sf.rel,
                        field.line,
                        field.col,
                        format!(
                            "field `{}::{}` never appears in {role} fn `{fn_name}` ({}) — it would silently drop on the wire",
                            pair.struct_name, field.name, wf.rel
                        ),
                    );
                }
            }
        }
    }
}

/// AS03: every declared obs registry name needs at least one potential
/// emitting site — a string literal with that exact text anywhere in
/// non-test workspace code outside the registry file itself. The loose
/// literal match (rather than call-argument position) tolerates names
/// routed through helpers and multi-line calls; it only misses names built
/// by concatenation, which AO01 already discourages.
pub fn as03_findings(
    summaries: &[crate::symbols::FileSummary],
    registry: &Registry,
    out: &mut Vec<Finding>,
) {
    let mut live: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for s in summaries {
        if s.rel == crate::registry::OBS_NAMES_PATH {
            continue;
        }
        live.extend(s.shaped_literals.iter().map(String::as_str));
    }
    for entry in &registry.obs_names {
        if !live.contains(entry.name.as_str()) {
            out.push(Finding {
                lint: "AS03",
                severity: Severity::Deny,
                path: crate::registry::OBS_NAMES_PATH.to_string(),
                line: entry.line,
                col: entry.col,
                snippet: String::new(),
                message: format!(
                    "registry name {:?} has no emitting call site anywhere in the workspace — dead entry",
                    entry.name
                ),
            });
        }
    }
}

/// The `dotted.lowercase` name shape: segments of `[a-z0-9_]`, the first
/// starting with a letter, joined by single dots.
pub fn is_dotted_lowercase(name: &str) -> bool {
    let mut segments = name.split('.');
    let Some(first) = segments.next() else {
        return false;
    };
    let seg_ok = |s: &str, lead_alpha: bool| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            && (!lead_alpha || s.starts_with(|c: char| c.is_ascii_lowercase()))
    };
    seg_ok(first, true) && segments.all(|s| seg_ok(s, false))
}

/// Per-token flag: is this token lexically inside a `for`/`while`/`loop`
/// body? A brace-stack scan, `{` after a loop keyword (at the keyword's
/// bracket depth) opens a loop body. `for` in `impl Trait for Type` and
/// higher-ranked `for<'a>` positions is recognized and skipped: a statement
/// `for` is never preceded by an identifier or `>` and never followed by
/// `<`.
fn loop_body_map(toks: &[Tok]) -> Vec<bool> {
    let mut map = vec![false; toks.len()];
    // One entry per open `{`: was it a loop body?
    let mut braces: Vec<bool> = Vec::new();
    // Bracket depth ((/[) at the pending loop keyword, if any.
    let mut pending: Option<usize> = None;
    let mut brackets = 0usize;
    let mut loop_depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Ident if matches!(t.text.as_str(), "for" | "while" | "loop") => {
                let impl_for = prev_sig(toks, i).is_some_and(|p| {
                    p.kind == TokKind::Ident || (p.kind == TokKind::Punct && p.text == ">")
                });
                let hrtb = next_is(toks, i, "<");
                if !impl_for && !hrtb {
                    pending = Some(brackets);
                }
            }
            TokKind::Punct => match t.text.as_str() {
                "(" | "[" => brackets += 1,
                ")" | "]" => brackets = brackets.saturating_sub(1),
                "{" => {
                    let is_loop = pending == Some(brackets);
                    if is_loop {
                        pending = None;
                        loop_depth += 1;
                    }
                    braces.push(is_loop);
                }
                // The guard pops unconditionally: a non-loop `}` must still
                // shrink the brace stack, it just doesn't change loop depth.
                "}" if braces.pop().unwrap_or(false) => {
                    loop_depth = loop_depth.saturating_sub(1);
                }
                ";" => pending = None,
                _ => {}
            },
            _ => {}
        }
        map[i] = loop_depth > 0;
    }
    map
}

/// Previous significant token before index `i`.
fn prev_sig(toks: &[Tok], i: usize) -> Option<&Tok> {
    if i == 0 {
        None
    } else {
        toks.get(i - 1)
    }
}

fn prev_is(toks: &[Tok], i: usize, punct: &str) -> bool {
    // `::` is lexed as two single-char puncts; match the immediately
    // preceding one(s).
    if punct == "::" {
        i >= 2
            && toks[i - 1].kind == TokKind::Punct
            && toks[i - 1].text == ":"
            && toks[i - 2].kind == TokKind::Punct
            && toks[i - 2].text == ":"
    } else {
        i >= 1 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == punct
    }
}

/// Whether the identifier before a `::` chain ending at `i` equals `name`
/// (`thread :: spawn` → for i at `spawn`, checks `thread`).
fn prev_ident_is(toks: &[Tok], i: usize, name: &str) -> bool {
    i >= 3 && toks[i - 3].kind == TokKind::Ident && toks[i - 3].text == name
}

fn next_is(toks: &[Tok], i: usize, punct: &str) -> bool {
    toks.get(i + 1)
        .map(|t| t.kind == TokKind::Punct && t.text == punct)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ids_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for s in CATALOG {
            assert!(seen.insert(s.id), "duplicate lint id {}", s.id);
            assert!(s.id.len() == 4, "{}", s.id);
            assert!(!s.summary.is_empty());
        }
    }

    #[test]
    fn dotted_lowercase_shape() {
        for ok in [
            "boot",
            "crawl.pre",
            "dsar.after_interaction1",
            "fault.bid_loss",
            "a.b.c",
        ] {
            assert!(is_dotted_lowercase(ok), "{ok}");
        }
        for bad in [
            "", "Boot", "avs-pass", "a..b", ".a", "a.", "1a", "a.B", "a b",
        ] {
            assert!(!is_dotted_lowercase(bad), "{bad}");
        }
    }
}
