//! Integration tests: the fixture workspace against its golden report, the
//! ratchet semantics, the real workspace gate, and the DESIGN.md lint-catalog
//! drift check.

use alexa_analyzer::{
    analyze, analyze_with, findings, AnalyzeOpts, BaselineEntry, Config, CATALOG,
};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyzer sits two levels below the workspace root")
        .to_path_buf()
}

fn fixture_config() -> Config {
    let src = std::fs::read_to_string(fixture_root().join("analyzer.toml")).expect("fixture toml");
    Config::parse(&src).expect("fixture config parses")
}

/// Render a report exactly like `--format json` does.
fn report_json(report: &alexa_analyzer::AnalysisReport) -> String {
    let mut all: Vec<findings::Finding> = report.new_findings.clone();
    all.extend(report.warnings.iter().cloned());
    all.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    findings::render_json(&all, &report.drift, report.baselined, report.clean())
}

#[test]
fn fixture_findings_match_golden_json() {
    let report = analyze(&fixture_root(), &fixture_config()).expect("fixture analyzes");
    let expected = include_str!("fixtures/expected.json");
    assert_eq!(
        report_json(&report),
        expected,
        "fixture report drifted from tests/fixtures/expected.json — if the \
         change is intentional, regenerate the golden with --format json"
    );
}

#[test]
fn fixture_counts_are_what_the_golden_encodes() {
    let report = analyze(&fixture_root(), &fixture_config()).expect("fixture analyzes");
    assert!(!report.clean());
    assert_eq!(report.files_scanned, 10);
    assert_eq!(report.baselined, 1, "baselined.rs unwrap is covered");
    assert_eq!(report.warnings.len(), 2, "AP03 + AX01 are advisory");
    // Every deny lint fires at least once in the fixture tree.
    for id in [
        "AD01", "AD02", "AD03", "AD04", "AD05", "AP01", "AP02", "AO01", "AO02", "AS01", "AS02",
        "AS03", "AS04", "AX02",
    ] {
        assert!(
            report.new_findings.iter().any(|f| f.lint == id),
            "fixture should produce a {id} finding"
        );
    }
}

#[test]
fn ratchet_exact_match_is_clean_and_silent() {
    let mut cfg = fixture_config();
    let report = analyze(&fixture_root(), &cfg).expect("analyze");
    // Rebuild the baseline from the observed counts: the next run must be
    // clean, with every deny finding absorbed and no drift.
    cfg.baseline = report.fresh_baseline();
    let again = analyze(&fixture_root(), &cfg).expect("analyze");
    assert!(
        again.clean(),
        "exact baseline must gate nothing: {:?}",
        again.drift
    );
    assert!(again.new_findings.is_empty());
    assert!(again.drift.is_empty());
    assert_eq!(again.warnings.len(), 2, "warnings are never baselined");
}

#[test]
fn ratchet_flags_new_findings_beyond_the_baseline() {
    let mut cfg = fixture_config();
    let report = analyze(&fixture_root(), &cfg).expect("analyze");
    let mut baseline = report.fresh_baseline();
    // Pretend one AP02 site in lib.rs was not there when the baseline was
    // recorded: the run must fail and surface the site.
    let entry = baseline
        .iter_mut()
        .find(|b| b.lint == "AP02" && b.path == "crates/demo/src/lib.rs")
        .expect("lib.rs AP02 entry");
    entry.count -= 1;
    cfg.baseline = baseline;
    let again = analyze(&fixture_root(), &cfg).expect("analyze");
    assert!(!again.clean());
    assert!(again
        .new_findings
        .iter()
        .any(|f| f.lint == "AP02" && f.path == "crates/demo/src/lib.rs"));
    assert!(again
        .drift
        .iter()
        .any(|d| d.lint == "AP02" && d.actual > d.expected));
}

#[test]
fn ratchet_flags_stale_baseline_entries() {
    let mut cfg = fixture_config();
    let report = analyze(&fixture_root(), &cfg).expect("analyze");
    let mut baseline = report.fresh_baseline();
    // An entry for a file with no findings at all must fail as stale.
    baseline.push(BaselineEntry {
        lint: "AP01".to_string(),
        path: "crates/demo/src/vanished.rs".to_string(),
        count: 2,
    });
    cfg.baseline = baseline;
    let again = analyze(&fixture_root(), &cfg).expect("analyze");
    assert!(!again.clean(), "stale entries must fail the run");
    assert!(again
        .drift
        .iter()
        .any(|d| d.path == "crates/demo/src/vanished.rs" && d.expected == 2 && d.actual == 0));
    // Stale-only failures introduce no new findings.
    assert!(again.new_findings.is_empty());
}

#[test]
fn workspace_is_clean() {
    // The real workspace, under the checked-in analyzer.toml, must pass —
    // this is the same gate CI runs.
    let root = workspace_root();
    let (_, report) =
        alexa_analyzer::analyze_with_default_config(&root).expect("workspace analyzes");
    let mut complaints = String::new();
    for f in &report.new_findings {
        complaints.push_str(&f.render_human());
        complaints.push('\n');
    }
    for d in &report.drift {
        complaints.push_str(&d.render_human());
        complaints.push('\n');
    }
    assert!(report.clean(), "workspace lint gate failed:\n{complaints}");
    assert!(
        report.files_scanned > 50,
        "walker found only {} files",
        report.files_scanned
    );
}

#[test]
fn semantic_lints_skip_the_near_misses() {
    let report = analyze(&fixture_root(), &fixture_config()).expect("fixture analyzes");
    let all: Vec<&findings::Finding> = report
        .new_findings
        .iter()
        .chain(report.warnings.iter())
        .collect();
    // AS01: the clean render surface is not tainted, and the finding for
    // the tainted one carries the full cross-file call chain.
    assert!(!all
        .iter()
        .any(|f| f.lint == "AS01" && f.message.contains("render_static")));
    let taint = all
        .iter()
        .find(|f| f.lint == "AS01")
        .expect("render_report taint finding");
    for hop in ["render_report", "stamp", "read", "clock.rs"] {
        assert!(taint.message.contains(hop), "chain misses {hop}");
    }
    // AS02: the complete Meta pair round-trips; only Shard::gamma drifts.
    assert!(!all
        .iter()
        .any(|f| f.lint == "AS02" && f.message.contains("Meta")));
    assert!(all
        .iter()
        .any(|f| f.lint == "AS02" && f.message.contains("gamma")));
    // AS03: live names stay quiet; both dead entries are named.
    for live in ["\"boot\"", "\"render.bytes\"", "\"fault.injected\""] {
        assert!(!all
            .iter()
            .any(|f| f.lint == "AS03" && f.message.contains(live)));
    }
    for dead in ["fault.mystery", "fault.packet_drop"] {
        assert!(all
            .iter()
            .any(|f| f.lint == "AS03" && f.message.contains(dead)));
    }
    // AS04: the documented status 3 passes, only 7 is flagged.
    let as04: Vec<_> = all.iter().filter(|f| f.lint == "AS04").collect();
    assert_eq!(as04.len(), 1);
    assert!(as04[0].message.contains('7'));
}

/// Copy the fixture workspace into a fresh temp dir (so cache tests can
/// mutate files without touching the checked-in tree).
fn copy_fixture(dst: &Path) {
    fn walk(src: &Path, dst: &Path) {
        std::fs::create_dir_all(dst).expect("mkdir");
        for entry in std::fs::read_dir(src).expect("read_dir") {
            let entry = entry.expect("entry");
            let from = entry.path();
            let to = dst.join(entry.file_name());
            if from.is_dir() {
                walk(&from, &to);
            } else {
                std::fs::copy(&from, &to).expect("copy");
            }
        }
    }
    let _ = std::fs::remove_dir_all(dst);
    walk(&fixture_root(), dst);
}

#[test]
fn cache_reruns_semantic_lints_over_cached_summaries() {
    // The soundness property of the incremental cache: editing ONE file
    // must re-taint findings whose witness lives in OTHER (cached) files.
    let root = std::env::temp_dir().join("alexa-analyzer-cache-inval-test");
    copy_fixture(&root);
    let cfg = fixture_config();
    let opts = AnalyzeOpts {
        cache_dir: Some(root.join("target/analyzer")),
    };
    let clock = root.join("crates/obs/src/clock.rs");
    let tainted_src = std::fs::read_to_string(&clock).expect("clock.rs");

    let cold = analyze_with(&root, &cfg, &opts).expect("cold run");
    assert_eq!(cold.cache_hits, 0, "first run is cold");
    assert!(cold.new_findings.iter().any(|f| f.lint == "AS01"));

    // Make the clock deterministic: the AS01 taint in render.rs (a file we
    // did NOT touch, whose summary comes from the cache) must disappear.
    std::fs::write(
        &clock,
        "//! defused\npub fn read() -> u64 {\n    7\n}\npub fn fixed() -> u64 {\n    42\n}\n",
    )
    .expect("write clock");
    let defused = analyze_with(&root, &cfg, &opts).expect("defused run");
    assert!(
        defused.cache_hits >= 8,
        "only the edited file misses the cache (hits: {})",
        defused.cache_hits
    );
    assert!(
        !defused.new_findings.iter().any(|f| f.lint == "AS01"),
        "taint must vanish when the callee is deterministic"
    );

    // Restore the wallclock: the cached caller is re-tainted.
    std::fs::write(&clock, &tainted_src).expect("restore clock");
    let retainted = analyze_with(&root, &cfg, &opts).expect("retainted run");
    assert!(
        retainted.new_findings.iter().any(|f| f.lint == "AS01"),
        "taint must reappear through the cached caller summary"
    );
}

#[test]
fn cached_and_cold_runs_render_identical_reports() {
    let root = std::env::temp_dir().join("alexa-analyzer-cache-determinism-test");
    copy_fixture(&root);
    let cfg = fixture_config();
    let opts = AnalyzeOpts {
        cache_dir: Some(root.join("target/analyzer")),
    };
    let cold = analyze_with(&root, &cfg, &opts).expect("cold run");
    let warm = analyze_with(&root, &cfg, &opts).expect("warm run");
    assert_eq!(warm.cache_hits, warm.files_scanned, "fully warm");
    assert_eq!(
        report_json(&cold),
        report_json(&warm),
        "cache must not change a single byte of the report"
    );
}

#[test]
fn design_doc_catalogs_every_lint() {
    // DESIGN.md §11 documents the catalog; `--list-lints` prints it from the
    // same CATALOG constant. This test pins the two together: every lint's
    // id, slug and summary must appear verbatim in the doc.
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md")).expect("DESIGN.md");
    for spec in CATALOG {
        assert!(
            design.contains(spec.id),
            "DESIGN.md does not mention lint id {}",
            spec.id
        );
        assert!(
            design.contains(spec.slug),
            "DESIGN.md does not mention the slug of {} ({})",
            spec.id,
            spec.slug
        );
        assert!(
            design.contains(spec.summary),
            "DESIGN.md does not carry the one-line summary of {} verbatim:\n  {}",
            spec.id,
            spec.summary
        );
    }
}
