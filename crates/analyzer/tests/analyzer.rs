//! Integration tests: the fixture workspace against its golden report, the
//! ratchet semantics, the real workspace gate, and the DESIGN.md lint-catalog
//! drift check.

use alexa_analyzer::{analyze, findings, BaselineEntry, Config, CATALOG};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyzer sits two levels below the workspace root")
        .to_path_buf()
}

fn fixture_config() -> Config {
    let src = std::fs::read_to_string(fixture_root().join("analyzer.toml")).expect("fixture toml");
    Config::parse(&src).expect("fixture config parses")
}

/// Render a report exactly like `--format json` does.
fn report_json(report: &alexa_analyzer::AnalysisReport) -> String {
    let mut all: Vec<findings::Finding> = report.new_findings.clone();
    all.extend(report.warnings.iter().cloned());
    all.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    findings::render_json(&all, &report.drift, report.baselined, report.clean())
}

#[test]
fn fixture_findings_match_golden_json() {
    let report = analyze(&fixture_root(), &fixture_config()).expect("fixture analyzes");
    let expected = include_str!("fixtures/expected.json");
    assert_eq!(
        report_json(&report),
        expected,
        "fixture report drifted from tests/fixtures/expected.json — if the \
         change is intentional, regenerate the golden with --format json"
    );
}

#[test]
fn fixture_counts_are_what_the_golden_encodes() {
    let report = analyze(&fixture_root(), &fixture_config()).expect("fixture analyzes");
    assert!(!report.clean());
    assert_eq!(report.files_scanned, 6);
    assert_eq!(report.baselined, 1, "baselined.rs unwrap is covered");
    assert_eq!(report.warnings.len(), 2, "AP03 + AX01 are advisory");
    // Every deny lint fires at least once in the fixture tree.
    for id in [
        "AD01", "AD02", "AD03", "AD04", "AD05", "AP01", "AP02", "AO01", "AO02", "AX02",
    ] {
        assert!(
            report.new_findings.iter().any(|f| f.lint == id),
            "fixture should produce a {id} finding"
        );
    }
}

#[test]
fn ratchet_exact_match_is_clean_and_silent() {
    let mut cfg = fixture_config();
    let report = analyze(&fixture_root(), &cfg).expect("analyze");
    // Rebuild the baseline from the observed counts: the next run must be
    // clean, with every deny finding absorbed and no drift.
    cfg.baseline = report.fresh_baseline();
    let again = analyze(&fixture_root(), &cfg).expect("analyze");
    assert!(
        again.clean(),
        "exact baseline must gate nothing: {:?}",
        again.drift
    );
    assert!(again.new_findings.is_empty());
    assert!(again.drift.is_empty());
    assert_eq!(again.warnings.len(), 2, "warnings are never baselined");
}

#[test]
fn ratchet_flags_new_findings_beyond_the_baseline() {
    let mut cfg = fixture_config();
    let report = analyze(&fixture_root(), &cfg).expect("analyze");
    let mut baseline = report.fresh_baseline();
    // Pretend one AP02 site in lib.rs was not there when the baseline was
    // recorded: the run must fail and surface the site.
    let entry = baseline
        .iter_mut()
        .find(|b| b.lint == "AP02" && b.path == "crates/demo/src/lib.rs")
        .expect("lib.rs AP02 entry");
    entry.count -= 1;
    cfg.baseline = baseline;
    let again = analyze(&fixture_root(), &cfg).expect("analyze");
    assert!(!again.clean());
    assert!(again
        .new_findings
        .iter()
        .any(|f| f.lint == "AP02" && f.path == "crates/demo/src/lib.rs"));
    assert!(again
        .drift
        .iter()
        .any(|d| d.lint == "AP02" && d.actual > d.expected));
}

#[test]
fn ratchet_flags_stale_baseline_entries() {
    let mut cfg = fixture_config();
    let report = analyze(&fixture_root(), &cfg).expect("analyze");
    let mut baseline = report.fresh_baseline();
    // An entry for a file with no findings at all must fail as stale.
    baseline.push(BaselineEntry {
        lint: "AP01".to_string(),
        path: "crates/demo/src/vanished.rs".to_string(),
        count: 2,
    });
    cfg.baseline = baseline;
    let again = analyze(&fixture_root(), &cfg).expect("analyze");
    assert!(!again.clean(), "stale entries must fail the run");
    assert!(again
        .drift
        .iter()
        .any(|d| d.path == "crates/demo/src/vanished.rs" && d.expected == 2 && d.actual == 0));
    // Stale-only failures introduce no new findings.
    assert!(again.new_findings.is_empty());
}

#[test]
fn workspace_is_clean() {
    // The real workspace, under the checked-in analyzer.toml, must pass —
    // this is the same gate CI runs.
    let root = workspace_root();
    let (_, report) =
        alexa_analyzer::analyze_with_default_config(&root).expect("workspace analyzes");
    let mut complaints = String::new();
    for f in &report.new_findings {
        complaints.push_str(&f.render_human());
        complaints.push('\n');
    }
    for d in &report.drift {
        complaints.push_str(&d.render_human());
        complaints.push('\n');
    }
    assert!(report.clean(), "workspace lint gate failed:\n{complaints}");
    assert!(
        report.files_scanned > 50,
        "walker found only {} files",
        report.files_scanned
    );
}

#[test]
fn design_doc_catalogs_every_lint() {
    // DESIGN.md §11 documents the catalog; `--list-lints` prints it from the
    // same CATALOG constant. This test pins the two together: every lint's
    // id, slug and summary must appear verbatim in the doc.
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md")).expect("DESIGN.md");
    for spec in CATALOG {
        assert!(
            design.contains(spec.id),
            "DESIGN.md does not mention lint id {}",
            spec.id
        );
        assert!(
            design.contains(spec.slug),
            "DESIGN.md does not mention the slug of {} ({})",
            spec.id,
            spec.slug
        );
        assert!(
            design.contains(spec.summary),
            "DESIGN.md does not carry the one-line summary of {} verbatim:\n  {}",
            spec.id,
            spec.summary
        );
    }
}
