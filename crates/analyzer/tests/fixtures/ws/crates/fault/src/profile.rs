//! Mini fault-channel label table for the analyzer fixture workspace.

pub const CHANNEL_LABELS: &[&str] = &["packet_drop", "crawl_timeout"];
