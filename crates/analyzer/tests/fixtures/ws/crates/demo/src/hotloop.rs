//! AD05 fixture: per-iteration allocation on a configured hot path.

pub fn alloc_in_loops(names: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for n in names {
        out.push(n.clone());
        out.push(format!("{n}!"));
        out.push(n.as_str().to_string());
    }
    out
}

pub fn hoisted_is_fine(name: &str) -> String {
    // Outside any loop: allocation is not a finding.
    let copy = name.to_owned();
    copy.to_uppercase()
}

pub struct Wrapper(Box<str>);

impl Clone for Wrapper {
    // `for` in impl position must not open a phantom loop body.
    fn clone(&self) -> Wrapper {
        Wrapper(self.0.clone())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_loops_are_exempt() {
        for i in 0..3 {
            let _ = i.to_string();
        }
    }
}
