//! Wire codecs for the fixture schema. `shard_to_json` drops `gamma` —
//! the AS02 true positive; the `Meta` pair is the complete near-miss.

pub fn shard_to_json(s: &Shard) -> String {
    format!("{{\"alpha\":{},\"beta\":{:?}}}", s.alpha, s.beta)
}

pub fn shard_from_json(v: &Json) -> Shard {
    Shard {
        alpha: v.u64("alpha"),
        beta: v.str("beta"),
        gamma: v.u32("gamma"),
    }
}

pub fn meta_to_json(m: &Meta) -> String {
    format!("{{\"id\":{}}}", m.id)
}

pub fn meta_from_json(v: &Json) -> Meta {
    Meta { id: v.u64("id") }
}
