//! Fixture module whose single unwrap is covered by the checked-in baseline.

pub fn legacy(v: Option<u32>) -> u32 {
    v.unwrap()
}
