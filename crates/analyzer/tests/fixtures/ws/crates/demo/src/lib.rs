//! Fixture library: one deliberate violation (or near-miss) per lint.

use std::collections::HashMap;

pub fn wallclock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn entropy() -> u64 {
    thread_rng()
}

pub fn unordered() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn threads() {
    std::thread::spawn(|| {});
}

pub fn processes() {
    std::process::Command::new("x");
}

pub fn process_near_miss() {
    // `Command` without a `process::` path is someone else's type, and
    // `process::exit` is not a spawn — neither may trip AD04.
    let _c = Command::default();
    std::process::exit(0);
}

pub fn panics(v: &[u32]) -> u32 {
    if v.is_empty() {
        panic!("boom");
    }
    v[0]
}

pub fn unwraps(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn escaped(v: Option<u32>) -> u32 {
    // analyzer:allow(AP02) -- fixture: the invariant is documented here
    v.expect("escaped site")
}

pub fn reasonless(v: Option<u32>) -> u32 {
    // analyzer:allow(AP02)
    v.unwrap()
}

// analyzer:allow(AD01) -- stale: nothing on these lines reads a clock
pub fn stale_escape() {}

pub fn obs_names(rec: &Recorder) {
    rec.stage("boot", || {});
    rec.count("Not-Registered", 1);
    rec.count("mystery.name", 1);
    rec.time("timer.unregistered", || {});
    agg_count("fault.unknown", 1);
}

pub fn live_names(rec: &Recorder) {
    // Keeps these registry entries live for AS03; fault.packet_drop and
    // fault.mystery have no emitting site anywhere and stay dead.
    rec.count("render.bytes", 1);
    agg_count("fault.injected", 1);
}

pub fn near_misses() {
    // Instant and thread_rng in a comment are data, not findings.
    let _s = "Instant::now() and thread_rng() and panic!";
    let _r = r#"HashMap in a raw string"#;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Vec<u32> = vec![1];
        let _ = v[0];
        let _ = Some(1).unwrap();
        let _ = std::time::Instant::now();
        panic!("fine in tests");
    }
}
