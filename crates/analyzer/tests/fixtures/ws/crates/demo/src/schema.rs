//! AS02 fixture: wire-paired structs. `Shard.gamma` is deliberately
//! missing from the encode side in wire.rs; `Meta` round-trips fully.

pub struct Shard {
    pub alpha: u64,
    pub beta: String,
    pub gamma: u32,
}

pub struct Meta {
    pub id: u64,
}
