//! Fixture binary: panic-safety lints do not apply, determinism lints do.

fn main() {
    let v: Option<u32> = Some(1);
    let _ = v.unwrap(); // no AP02: binaries may crash loudly
    let _ = thread_rng(); // AD02 still applies everywhere
}
