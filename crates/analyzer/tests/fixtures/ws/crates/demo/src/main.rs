//! Fixture binary: panic-safety lints do not apply, determinism lints do,
//! and exit statuses must come from the documented contract (AS04).

fn main() {
    let v: Option<u32> = Some(1);
    let _ = v.unwrap(); // no AP02: binaries may crash loudly
    let _ = thread_rng(); // AD02 still applies everywhere
    if v.is_none() {
        std::process::exit(7); // AS04: 7 is not a documented status
    }
    std::process::exit(3); // near-miss: 3 is in the documented contract
}
