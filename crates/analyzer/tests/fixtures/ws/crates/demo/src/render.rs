//! AS01 fixture: a committed render surface whose taint chain crosses two
//! files (render.rs -> obs/clock.rs), plus a clean near-miss.

pub fn render_report(out: &mut String) {
    out.push_str(&stamp());
}

fn stamp() -> String {
    let t = clock::read();
    format!("stamped {t:?}")
}

pub fn render_static(out: &mut String) {
    // Near-miss: reaches only pure helpers, no determinism source.
    out.push_str(badge());
    let _ = clock::fixed();
}

fn badge() -> &'static str {
    "ok"
}
