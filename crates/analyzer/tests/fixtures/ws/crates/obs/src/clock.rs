//! Wallclock reader for the fixture workspace. The `obs` crate is
//! AD01-allowed (volatile timings are its job), so the `Instant` here is
//! not a per-file finding — but AS01 taint still flows through it.

pub fn read() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn fixed() -> u64 {
    42
}
