//! Mini observability-name registry for the analyzer fixture workspace.

pub const REGISTRY: &[&str] = &[
    "boot",
    "fault.injected",
    "fault.mystery",
    "fault.packet_drop",
    "render.bytes",
];
