//! End-to-end tests of the pluggable worker backends (DESIGN.md §15).
//!
//! Three contracts, each exercised through the real `repro` binary
//! (`CARGO_BIN_EXE_repro`) so the process backend spawns genuine
//! `--shard-worker` children:
//!
//! * **byte-identity** — thread, process and mock-remote backends commit
//!   byte-identical cell bundles for every `(seed, fault profile)`, proven
//!   over seeds 7/1234/2222 × {none, flaky};
//! * **worker death** — a worker killed mid-shard degrades that shard into
//!   the coverage ledger and the run exits 3 with the report rendered;
//! * **worker hang** — a stalled worker is cut off by the wall-clock
//!   timeout instead of hanging the parent.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A fresh scratch directory unique to this test invocation.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alexa-backends-{}-{test}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every file under `dir`, as relative path → bytes (deterministic order).
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    walk(dir, dir, &mut files);
    files
}

fn walk(root: &Path, dir: &Path, files: &mut BTreeMap<String, Vec<u8>>) {
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            walk(root, &path, files);
        } else {
            let rel = path
                .strip_prefix(root)
                .expect("path under root")
                .to_string_lossy()
                .into_owned();
            files.insert(rel, std::fs::read(&path).expect("read file"));
        }
    }
}

/// The full matrix the issue pins: seeds 7/1234/2222 × {none, flaky} run
/// under all three backends must commit byte-identical bundles. The
/// campaign runner's own `verify` pass already enforces instance equality
/// of `metrics.json`; this test additionally compares **every** bundle
/// file byte for byte.
#[test]
fn backends_commit_byte_identical_bundles_across_seeds_and_faults() {
    let dir = scratch("matrix");
    let plan = dir.join("backends.json");
    std::fs::write(
        &plan,
        r#"{"schema": 1, "name": "backends", "scale": "small", "seeds": [7, 1234, 2222], "faults": ["none", "flaky"], "defenses": ["none"], "jobs": [2], "backends": ["thread", "process", "mock-remote"], "repeats": 1}"#,
    )
    .expect("write plan");
    let camp = dir.join("out");
    let out = repro()
        .args(["campaign", plan.to_str().expect("utf8 path"), "--out"])
        .arg(&camp)
        .output()
        .expect("run repro campaign");
    assert!(
        out.status.success(),
        "campaign failed:\n{}\n{}",
        stdout(&out),
        stderr(&out)
    );
    assert!(
        stdout(&out).contains("18 cell(s) — 18 executed, 0 skipped, 0 degraded"),
        "unexpected cell accounting:\n{}",
        stdout(&out)
    );
    for seed in [7u64, 1234, 2222] {
        for fault in ["none", "flaky"] {
            let thread_dir = camp
                .join("cells")
                .join(format!("s{seed}-f{fault}-dnone-j2-r0"));
            let thread = snapshot(&thread_dir);
            assert!(
                !thread.is_empty(),
                "thread bundle missing for seed {seed} fault {fault}"
            );
            for suffix in ["bprocess", "bmockremote"] {
                let other_dir = PathBuf::from(format!("{}-{suffix}", thread_dir.display()));
                let other = snapshot(&other_dir);
                assert_eq!(
                    thread.keys().collect::<Vec<_>>(),
                    other.keys().collect::<Vec<_>>(),
                    "seed {seed} fault {fault}: {suffix} bundle has different files"
                );
                for (name, bytes) in &thread {
                    assert!(
                        other.get(name) == Some(bytes),
                        "seed {seed} fault {fault}: {name} differs between thread and {suffix}"
                    );
                }
            }
        }
    }
}

/// A worker killed mid-shard (simulated via the `REPRO_WORKER_CRASH` test
/// hook) must degrade that shard — never panic the parent: the run exits 3,
/// says so on stderr, and still renders the requested artifact.
#[test]
fn killed_worker_degrades_the_run_to_exit_3() {
    let out = repro()
        .args([
            "--backend",
            "process",
            "--seed",
            "7",
            "--jobs",
            "2",
            "table1",
        ])
        .env("REPRO_WORKER_CRASH", "persona/3")
        .output()
        .expect("run repro");
    assert_eq!(
        out.status.code(),
        Some(3),
        "expected degraded exit:\n{}",
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("run degraded"),
        "stderr should explain the degradation:\n{}",
        stderr(&out)
    );
    assert!(
        stdout(&out).contains("Table 1"),
        "the report must still render:\n{}",
        stdout(&out)
    );
}

/// A hung worker (simulated via `REPRO_WORKER_STALL`, sleeping far past any
/// reasonable budget) is cut off by `--worker-timeout-ms`: the run finishes
/// promptly with the shard degraded instead of hanging on the pipe.
#[test]
fn stalled_worker_is_timed_out_within_the_configured_budget() {
    let started = std::time::Instant::now();
    let out = repro()
        .args([
            "--backend",
            "process",
            "--seed",
            "7",
            "--jobs",
            "2",
            "--worker-timeout-ms",
            "500",
            "table1",
        ])
        .env("REPRO_WORKER_STALL", "avs/1")
        .env("REPRO_WORKER_STALL_MS", "120000")
        .output()
        .expect("run repro");
    assert_eq!(
        out.status.code(),
        Some(3),
        "expected degraded exit:\n{}",
        stderr(&out)
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(60),
        "run took {:?} — the stalled worker was not timed out",
        started.elapsed()
    );
}

/// `--backend` rejects unknown names with the usage exit code, not a panic.
#[test]
fn unknown_backend_is_a_usage_error() {
    let out = repro()
        .args(["--backend", "quantum", "--seed", "7", "table1"])
        .output()
        .expect("run repro");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown backend"),
        "stderr should name the problem:\n{}",
        stderr(&out)
    );
}
