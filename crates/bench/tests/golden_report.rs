//! Golden byte-equality of the full `repro all` report.
//!
//! The shared-`AnalysisIndex` render path must produce **exactly** the bytes
//! the naive per-artifact rescans produced before the refactor — a perf PR
//! must not change output — and those bytes must not depend on the worker
//! count. Each seed's full report is pinned to a committed golden file and
//! additionally rendered at `--jobs 1/4/8` for byte-equality.
//!
//! Regenerate the goldens after an *intentional* output change with
//! `BLESS=1 cargo test -p alexa-bench --test golden_report`.

use alexa_audit::{AuditConfig, AuditRun};
use alexa_bench::{render_all, ARTIFACTS};
use alexa_fault::FaultProfile;
use alexa_obs::Recorder;

/// What `repro --seed N all` writes to stdout: every artifact in paper
/// order, each followed by the `println!` newline.
fn repro_all_stdout(seed: u64, jobs: usize) -> String {
    let obs = AuditRun::execute(AuditConfig::paper(seed).with_jobs(Some(jobs)));
    let rec = Recorder::disabled();
    let mut out = String::new();
    for artifact in render_all(
        &obs,
        ARTIFACTS,
        seed,
        Some(jobs),
        &FaultProfile::none(),
        &rec,
    ) {
        out.push_str(&artifact);
        out.push('\n');
    }
    out
}

fn check_seed(seed: u64, golden: &str, golden_path: &str) {
    let sequential = repro_all_stdout(seed, 1);
    for jobs in [4, 8] {
        let parallel = repro_all_stdout(seed, jobs);
        assert_eq!(
            sequential, parallel,
            "seed {seed}: report bytes differ between --jobs 1 and --jobs {jobs}"
        );
    }
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &sequential).expect("write golden");
        return;
    }
    assert_eq!(
        sequential, golden,
        "seed {seed}: report drifted from {golden_path} \
         (BLESS=1 regenerates after an intentional change)"
    );
}

#[test]
fn report_seed7_matches_golden_across_jobs() {
    check_seed(
        7,
        include_str!("golden/report_seed7.txt"),
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/report_seed7.txt"),
    );
}

#[test]
fn report_seed1234_matches_golden_across_jobs() {
    check_seed(
        1234,
        include_str!("golden/report_seed1234.txt"),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/report_seed1234.txt"
        ),
    );
}

#[test]
fn report_seed2222_matches_golden_across_jobs() {
    check_seed(
        2222,
        include_str!("golden/report_seed2222.txt"),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/report_seed2222.txt"
        ),
    );
}

/// Pins the folded work profile of a **rendered** small(7) run: unlike the
/// execution-only golden in `crates/audit`, this one covers `index.build`,
/// `derive.defended`, `index.defended` and — the point of the exercise —
/// per-artifact `render.all;artifact;<name>;render` frames, so render cost
/// attribution can never silently regress to zero again.
#[test]
fn rendered_profile_matches_golden_with_per_artifact_attribution() {
    let rec = Recorder::new();
    let obs = AuditRun::execute_with(AuditConfig::small(7), &rec);
    render_all(&obs, ARTIFACTS, 7, None, &FaultProfile::none(), &rec);
    let got = rec.report().folded_profile();

    for artifact in ["table1", "figure3", "defenses"] {
        assert!(
            got.lines()
                .any(|l| l.starts_with(&format!("render.all;artifact;{artifact};render "))),
            "no render work attributed to artifact {artifact}:\n{got}"
        );
    }

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/profile_render_seed7.folded"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    assert_eq!(
        got,
        include_str!("golden/profile_render_seed7.folded"),
        "rendered profile drifted from {path} \
         (BLESS=1 regenerates after an intentional change)"
    );
}
