//! End-to-end tests of `repro campaign`: plan parsing at the CLI boundary,
//! resume semantics, crash recovery, the `--run-dir` overwrite guard, and
//! golden-pinned analysis tables for the committed CI smoke plan.
//!
//! Every campaign here runs as a **subprocess** of the real `repro` binary
//! (`CARGO_BIN_EXE_repro`): cells install a fresh global recorder, so two
//! in-process campaigns racing in the same test binary would observe each
//! other.
//!
//! Regenerate the table goldens after an *intentional* output change with
//! `BLESS=1 cargo test -p alexa-bench --test campaign`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The committed CI smoke plan (2 seeds × {none, flaky} × jobs {1, 4}).
const SMOKE_PLAN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/plans/smoke.json");

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A fresh scratch directory unique to this test invocation.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alexa-campaign-{}-{test}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every file under `dir`, as relative path → bytes (deterministic order).
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    walk(dir, dir, &mut files);
    files
}

fn walk(root: &Path, dir: &Path, files: &mut BTreeMap<String, Vec<u8>>) {
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            walk(root, &path, files);
        } else {
            let rel = path
                .strip_prefix(root)
                .expect("path under root")
                .to_string_lossy()
                .into_owned();
            files.insert(rel, std::fs::read(&path).expect("read file"));
        }
    }
}

/// A two-cell plan (seed 7 × {none, flaky} × jobs 1) for fast resume tests.
fn write_tiny_plan(dir: &Path) -> PathBuf {
    let path = dir.join("tiny.json");
    std::fs::write(
        &path,
        r#"{"schema": 1, "name": "tiny", "scale": "small", "seeds": [7], "faults": ["none", "flaky"]}"#,
    )
    .expect("write plan");
    path
}

fn run_campaign(plan: &Path, out_dir: &Path) -> Output {
    repro()
        .args(["campaign", plan.to_str().unwrap(), "--out"])
        .arg(out_dir)
        .output()
        .expect("run repro campaign")
}

#[test]
fn plan_parse_errors_are_typed_and_exit_2() {
    let dir = scratch("parse-errors");
    let cases: [(&str, &str, &[&str]); 4] = [
        (
            "syntax.json",
            r#"{"schema": 1, "name": "x", "#,
            &["plan is not valid JSON", "offset"],
        ),
        (
            "schema.json",
            r#"{"schema": 99, "name": "x", "seeds": [7]}"#,
            &["schema"],
        ),
        (
            "unknown.json",
            r#"{"schema": 1, "name": "x", "seeds": [7], "turbo": true}"#,
            &["plan field"],
        ),
        (
            "empty-axis.json",
            r#"{"schema": 1, "name": "x", "seeds": []}"#,
            &["plan field", "seeds"],
        ),
    ];
    for (file, body, expected) in cases {
        let plan = dir.join(file);
        std::fs::write(&plan, body).expect("write plan");
        let out = run_campaign(&plan, &dir.join("out"));
        assert_eq!(out.status.code(), Some(2), "{file}: wrong exit code");
        let err = stderr(&out);
        for needle in expected {
            assert!(
                err.contains(needle),
                "{file}: stderr lacks {needle:?}: {err}"
            );
        }
    }
}

#[test]
fn missing_plan_exits_2() {
    let dir = scratch("missing-plan");
    let out = run_campaign(&dir.join("nope.json"), &dir.join("out"));
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("cannot read plan"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn resume_skips_completed_cells() {
    let dir = scratch("resume");
    let plan = write_tiny_plan(&dir);
    let camp = dir.join("camp");

    let first = run_campaign(&plan, &camp);
    assert_eq!(first.status.code(), Some(0), "{}", stderr(&first));
    assert!(
        stdout(&first).contains("2 cell(s) — 2 executed, 0 skipped"),
        "first run should execute every cell:\n{}",
        stdout(&first)
    );
    let after_first = snapshot(&camp);

    let second = run_campaign(&plan, &camp);
    assert_eq!(second.status.code(), Some(0), "{}", stderr(&second));
    assert!(
        stdout(&second).contains("2 cell(s) — 0 executed, 2 skipped"),
        "second run should skip every cell:\n{}",
        stdout(&second)
    );
    assert_eq!(
        after_first,
        snapshot(&camp),
        "resume must not rewrite any byte of a completed campaign"
    );
}

#[test]
fn crash_mid_campaign_then_resume_is_byte_identical_to_fresh() {
    let dir = scratch("crash-resume");
    let plan = write_tiny_plan(&dir);

    let fresh = dir.join("fresh");
    let out = run_campaign(&plan, &fresh);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // Simulate a crash mid-campaign: one cell lost its manifest (written
    // last, so a partial cell never has one) and campaign.json (also
    // written last) never landed.
    let crashed = dir.join("crashed");
    let out = run_campaign(&plan, &crashed);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let cell = crashed.join("cells").join("s7-fflaky-dnone-j1-r0");
    std::fs::remove_file(cell.join("manifest.json")).expect("drop cell manifest");
    std::fs::remove_file(crashed.join("campaign.json")).expect("drop campaign manifest");

    let resume = run_campaign(&plan, &crashed);
    assert_eq!(resume.status.code(), Some(0), "{}", stderr(&resume));
    assert!(
        stdout(&resume).contains("2 cell(s) — 1 executed, 1 skipped"),
        "resume should re-execute only the crashed cell:\n{}",
        stdout(&resume)
    );
    assert_eq!(
        snapshot(&fresh),
        snapshot(&crashed),
        "a resumed campaign must be byte-identical to an uninterrupted one"
    );
}

#[test]
fn changed_plan_in_existing_campaign_dir_exits_2() {
    let dir = scratch("plan-changed");
    let plan = write_tiny_plan(&dir);
    let camp = dir.join("camp");
    let out = run_campaign(&plan, &camp);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    let renamed = dir.join("renamed.json");
    std::fs::write(
        &renamed,
        r#"{"schema": 1, "name": "renamed", "scale": "small", "seeds": [7], "faults": ["none", "flaky"]}"#,
    )
    .expect("write plan");
    let out = run_campaign(&renamed, &camp);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("was produced by a different plan"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn run_dir_refuses_foreign_nonempty_directory() {
    let dir = scratch("run-dir-guard");
    std::fs::write(dir.join("notes.txt"), "precious\n").expect("write file");
    let out = repro()
        .args(["--seed", "7", "--run-dir"])
        .arg(&dir)
        .arg("table1")
        .output()
        .expect("run repro");
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("refusing to overwrite"),
        "{}",
        stderr(&out)
    );
    let contents = std::fs::read(dir.join("notes.txt")).expect("file survives");
    assert_eq!(contents, b"precious\n");
}

#[test]
fn run_dir_refuses_bundle_of_a_different_run() {
    let dir = scratch("run-dir-mismatch");
    let first = repro()
        .args(["--seed", "7", "--run-dir"])
        .arg(&dir)
        .arg("table1")
        .output()
        .expect("run repro");
    assert_eq!(first.status.code(), Some(0), "{}", stderr(&first));

    let other = repro()
        .args(["--seed", "8", "--run-dir"])
        .arg(&dir)
        .arg("table1")
        .output()
        .expect("run repro");
    assert_eq!(other.status.code(), Some(2), "{}", stderr(&other));
    assert!(
        stderr(&other).contains("a different run"),
        "{}",
        stderr(&other)
    );

    // Same identity is allowed to overwrite: re-runs refresh their bundle.
    let again = repro()
        .args(["--seed", "7", "--run-dir"])
        .arg(&dir)
        .arg("table1")
        .output()
        .expect("run repro");
    assert_eq!(again.status.code(), Some(0), "{}", stderr(&again));
}

/// The derived analysis tables for the committed CI smoke plan, pinned
/// byte-for-byte. The plan spans jobs {1, 4}, so a passing run also proves
/// the tables are independent of worker count.
#[test]
fn smoke_plan_tables_match_goldens() {
    let dir = scratch("smoke-goldens");
    let camp = dir.join("camp");
    let out = run_campaign(Path::new(SMOKE_PLAN), &camp);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("8 cell(s) — 8 executed, 0 skipped"),
        "{}",
        stdout(&out)
    );

    let golden_dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"));
    for table in ["bids_by_fault", "coverage_by_fault", "defense_efficacy"] {
        for ext in ["jsonl", "md"] {
            let produced =
                std::fs::read_to_string(camp.join("tables").join(format!("{table}.{ext}")))
                    .expect("read produced table");
            let golden_path = golden_dir.join(format!("campaign_smoke_{table}.{ext}"));
            if std::env::var_os("BLESS").is_some() {
                std::fs::write(&golden_path, &produced).expect("write golden");
                continue;
            }
            let golden =
                std::fs::read_to_string(&golden_path).expect("read golden (BLESS=1 generates it)");
            assert_eq!(
                produced,
                golden,
                "{table}.{ext} drifted from {} (BLESS=1 regenerates after an \
                 intentional change)",
                golden_path.display()
            );
        }
    }
}
