//! Statistics scaling: Mann–Whitney U (exact vs asymptotic) and summary
//! computation across sample sizes.

use alexa_stats::{five_number_summary, mann_whitney_u, Alternative, MwuMethod};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.0..10.0)).collect()
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("mann_whitney");
    for &n in &[10usize, 20, 25] {
        let x = sample(n, 1);
        let y = sample(n, 2);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| mann_whitney_u(&x, &y, Alternative::Greater, MwuMethod::Exact))
        });
    }
    for &n in &[25usize, 100, 1000, 10_000] {
        let x = sample(n, 1);
        let y = sample(n, 2);
        group.bench_with_input(BenchmarkId::new("asymptotic", n), &n, |b, _| {
            b.iter(|| mann_whitney_u(&x, &y, Alternative::Greater, MwuMethod::Asymptotic))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("descriptive");
    for &n in &[100usize, 10_000] {
        let x = sample(n, 3);
        group.bench_with_input(BenchmarkId::new("five_number_summary", n), &n, |b, _| {
            b.iter(|| five_number_summary(&x))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
