//! Header-bidding auction throughput: bids per second for the standard
//! 30-bidder roster, with and without targeting segments.

use alexa_adtech::bidding::{standard_roster, SeasonModel, UserState};
use alexa_adtech::{AdSlot, Auction, SyncGraph};
use alexa_platform::SkillCategory;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_auction(c: &mut Criterion) {
    let graph = SyncGraph::generate(1);
    let auction = Auction {
        bidders: standard_roster(graph.partners()),
        season: SeasonModel::default(),
    };
    let slot = AdSlot {
        id: "bench#1".into(),
        site: "bench".into(),
        quality: 1.0,
    };

    let blank = UserState::blank("bench");
    let mut targeted = UserState::blank("bench");
    targeted.amazon_customer = true;
    targeted.echo_segments.insert(SkillCategory::FashionStyle);

    let mut group = c.benchmark_group("auction");
    group.bench_function("request_bids/untargeted", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(9),
            |mut rng| auction.request_bids(&slot, &blank, 10, &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("request_bids/targeted", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(9),
            |mut rng| auction.request_bids(&slot, &targeted, 10, &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_auction);
criterion_main!(benches);
