//! PoliCheck throughput: policy rendering, endpoint classification, and
//! data-type classification over the full catalog.

use alexa_net::DataType;
use alexa_platform::Marketplace;
use alexa_policy::{PoliCheck, PolicyGenerator};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_policheck(c: &mut Criterion) {
    let market = Marketplace::generate(42);
    let generator = PolicyGenerator::new();
    let docs: Vec<_> = market
        .all()
        .iter()
        .filter_map(|s| generator.render(s))
        .collect();
    let checker = PoliCheck::new();
    let checker_platform = PoliCheck::with_platform_policy();

    let mut group = c.benchmark_group("policheck");
    group.bench_function("render_full_catalog", |b| {
        b.iter(|| {
            market
                .all()
                .iter()
                .filter_map(|s| generator.render(s))
                .count()
        })
    });
    group.bench_function("classify_endpoint/188_docs", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| checker.classify_endpoint(Some(d), "Podtrac Inc"))
                .filter(|c| *c == alexa_policy::DisclosureClass::Vague)
                .count()
        })
    });
    group.bench_function("classify_data_type/188_docs", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| checker.classify_data_type(Some(d), DataType::VoiceRecording))
                .filter(|c| *c == alexa_policy::DisclosureClass::Clear)
                .count()
        })
    });
    group.bench_function("classify_with_platform_policy/188_docs", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| checker_platform.classify_data_type(Some(d), DataType::Timezone))
                .filter(|c| *c == alexa_policy::DisclosureClass::Clear)
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policheck);
criterion_main!(benches);
