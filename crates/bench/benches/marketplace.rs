//! Ecosystem generation costs: marketplace catalog, sync graph, web, and a
//! full streaming session.

use alexa_adtech::{audio, StreamingService, SyncGraph, WebEcosystem};
use alexa_platform::Marketplace;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.bench_function("marketplace_450_skills", |b| {
        b.iter(|| Marketplace::generate(42))
    });
    group.bench_function("sync_graph_41_partners", |b| {
        b.iter(|| SyncGraph::generate(42))
    });
    group.bench_function("web_700_sites", |b| {
        b.iter(|| WebEcosystem::generate(42, 700))
    });
    group.bench_function("audio_session_6h", |b| {
        b.iter(|| {
            audio::simulate_session(
                StreamingService::Pandora,
                Some(alexa_platform::SkillCategory::FashionStyle),
                6.0,
                42,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
