//! End-to-end audit cost: a full reduced-scale run, and each analysis on the
//! shared paper-scale run's analysis index — one bench per table/figure family,
//! so a regression in any reproduction path is visible.

use alexa_audit::analysis::{
    audio, bids, creatives, partners, policy, profiling, significance, traffic,
};
use alexa_audit::{AuditConfig, AuditRun};
use alexa_bench::shared_paper_ix;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit");
    group.sample_size(10);
    group.bench_function("execute/small", |b| {
        b.iter(|| AuditRun::execute(AuditConfig::small(7)))
    });
    group.finish();

    let ix = shared_paper_ix();
    let mut group = c.benchmark_group("analysis");
    group.bench_function("table1_traffic", |b| b.iter(|| traffic::table1(ix)));
    group.bench_function("table2_shares", |b| b.iter(|| traffic::table2(ix)));
    group.bench_function("table5_bids", |b| b.iter(|| bids::table5(ix)));
    group.bench_function("figure3_boxes", |b| b.iter(|| bids::figure3(ix)));
    group.bench_function("table7_significance", |b| {
        b.iter(|| significance::table7(ix))
    });
    group.bench_function("table8_creatives", |b| b.iter(|| creatives::table8(ix)));
    group.bench_function("table9_audio", |b| b.iter(|| audio::table9(ix)));
    group.bench_function("table10_partners", |b| b.iter(|| partners::table10(ix)));
    group.bench_function("table11_echo_vs_web", |b| {
        b.iter(|| significance::table11(ix))
    });
    group.bench_function("table12_profiling", |b| b.iter(|| profiling::table12(ix)));
    group.bench_function("table13_policheck", |b| {
        b.iter(|| policy::table13(ix, false))
    });
    group.bench_function("table14_endpoints", |b| b.iter(|| policy::table14(ix)));
    group.bench_function("sync_recovery", |b| b.iter(|| partners::sync_analysis(ix)));
    group.finish();
}

criterion_group!(benches, bench_audit);
criterion_main!(benches);
