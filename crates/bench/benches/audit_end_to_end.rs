//! End-to-end audit cost: a full reduced-scale run, and each analysis on a
//! shared paper-scale observation set — one bench per table/figure family,
//! so a regression in any reproduction path is visible.

use alexa_audit::analysis::{
    audio, bids, creatives, partners, policy, profiling, significance, traffic,
};
use alexa_audit::{AuditConfig, AuditRun};
use alexa_bench::shared_paper_run;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit");
    group.sample_size(10);
    group.bench_function("execute/small", |b| {
        b.iter(|| AuditRun::execute(AuditConfig::small(7)))
    });
    group.finish();

    let obs = shared_paper_run();
    let mut group = c.benchmark_group("analysis");
    group.bench_function("table1_traffic", |b| b.iter(|| traffic::table1(obs)));
    group.bench_function("table2_shares", |b| b.iter(|| traffic::table2(obs)));
    group.bench_function("table5_bids", |b| b.iter(|| bids::table5(obs)));
    group.bench_function("figure3_boxes", |b| b.iter(|| bids::figure3(obs)));
    group.bench_function("table7_significance", |b| {
        b.iter(|| significance::table7(obs))
    });
    group.bench_function("table8_creatives", |b| b.iter(|| creatives::table8(obs)));
    group.bench_function("table9_audio", |b| b.iter(|| audio::table9(obs)));
    group.bench_function("table10_partners", |b| b.iter(|| partners::table10(obs)));
    group.bench_function("table11_echo_vs_web", |b| {
        b.iter(|| significance::table11(obs))
    });
    group.bench_function("table12_profiling", |b| b.iter(|| profiling::table12(obs)));
    group.bench_function("table13_policheck", |b| {
        b.iter(|| policy::table13(obs, false))
    });
    group.bench_function("table14_endpoints", |b| b.iter(|| policy::table14(obs)));
    group.bench_function("sync_recovery", |b| b.iter(|| partners::sync_analysis(obs)));
    group.finish();
}

criterion_group!(benches, bench_audit);
criterion_main!(benches);
