//! Capture-pipeline throughput: packet generation for a skill session and
//! the two-tap observation path (router opacification vs AVS plaintext).

use alexa_net::{AvsTap, RouterTap};
use alexa_platform::cloud::InteractionKind;
use alexa_platform::{AlexaCloud, Marketplace};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_capture(c: &mut Criterion) {
    let market = Marketplace::generate(42);
    let garmin = market.by_name("Garmin").unwrap().clone();
    let kind = InteractionKind::Utterance("where is my car".into());

    let mut group = c.benchmark_group("capture");
    group.bench_function("session_traffic/garmin", |b| {
        let mut cloud = AlexaCloud::new();
        b.iter(|| cloud.session_traffic("bench", "AMZN1", &garmin, &kind, false))
    });

    // Pre-generate a packet batch for tap benchmarks.
    let mut cloud = AlexaCloud::new();
    let packets = cloud.session_traffic("bench", "AMZN1", &garmin, &kind, false);

    group.bench_function("router_tap/observe_session", |b| {
        b.iter(|| {
            let mut tap = RouterTap::new();
            tap.start("garmin");
            for p in &packets {
                tap.observe(p);
            }
            tap.stop();
            tap.into_captures()
        })
    });
    group.bench_function("avs_tap/observe_session", |b| {
        b.iter(|| {
            let mut tap = AvsTap::new();
            tap.start("garmin");
            for p in &packets {
                tap.observe(p);
            }
            tap.stop();
            tap.into_captures()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_capture);
criterion_main!(benches);
