//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! * common-slot filtering vs pooling every slot (§3.3's control);
//! * slot-mean sampling vs pooled-bid sampling for the significance tests;
//! * PoliCheck with vs without the platform policy (§7.2.2);
//! * exact vs asymptotic Mann–Whitney at the paper's sample size.
//!
//! Each variant is measured on the shared paper-scale run's analysis index;
//! the *value* differences between variants are printed once at startup so
//! the ablation results are visible alongside the timings.

use alexa_audit::analysis::bids::{common_slots, pooled_bids, slot_means};
use alexa_audit::{AnalysisIndex, Persona};
use alexa_bench::shared_paper_ix;
use alexa_stats::{mann_whitney_u, Alternative, MwuMethod};
use criterion::{criterion_group, criterion_main, Criterion};

/// The no-filter control: every slot in the index's slot universe.
fn all_slots(ix: &AnalysisIndex) -> Vec<bool> {
    vec![true; ix.slots.len()]
}

fn print_value_ablations(ix: &AnalysisIndex) {
    let personas = Persona::echo_personas();
    let window = ix.obs.post_window();
    let common = common_slots(ix, &personas, window.clone());
    let every = all_slots(ix);
    let fashion = Persona::Interest(alexa_platform::SkillCategory::FashionStyle);

    let with_filter = {
        let t = slot_means(ix, fashion, window.clone(), &common);
        let v = slot_means(ix, Persona::Vanilla, window.clone(), &common);
        mann_whitney_u(&t, &v, Alternative::Greater, MwuMethod::Asymptotic).unwrap()
    };
    let without_filter = {
        let t = slot_means(ix, fashion, window.clone(), &every);
        let v = slot_means(ix, Persona::Vanilla, window.clone(), &every);
        mann_whitney_u(&t, &v, Alternative::Greater, MwuMethod::Asymptotic).unwrap()
    };
    eprintln!(
        "[ablation] common-slot filter: p={:.4} r={:.3} ({} slots) | no filter: p={:.4} r={:.3} ({} slots)",
        with_filter.p_value,
        with_filter.effect_size,
        ix.slot_count(&common),
        without_filter.p_value,
        without_filter.effect_size,
        ix.slot_count(&every),
    );

    let pooled_t = pooled_bids(ix, fashion, window.clone(), &common);
    let pooled_v = pooled_bids(ix, Persona::Vanilla, window.clone(), &common);
    let pooled = mann_whitney_u(
        &pooled_t,
        &pooled_v,
        Alternative::Greater,
        MwuMethod::Asymptotic,
    )
    .unwrap();
    eprintln!(
        "[ablation] slot-mean sample: p={:.4} (n={}) | pooled-bid sample: p={:.6} (n={})",
        with_filter.p_value,
        ix.slot_count(&common),
        pooled.p_value,
        pooled_t.len(),
    );

    // Crawl-budget ablation (DESIGN.md §6): how many post-interaction
    // iterations does the Table 7 inference need?
    for k in [3usize, 10, 25] {
        let obs = ix.obs;
        let w = obs.pre_iterations..(obs.pre_iterations + k.min(obs.post_iterations));
        let slots_k = common_slots(ix, &personas, w.clone());
        let t = slot_means(ix, fashion, w.clone(), &slots_k);
        let v = slot_means(ix, Persona::Vanilla, w, &slots_k);
        let r = mann_whitney_u(&t, &v, Alternative::Greater, MwuMethod::Asymptotic).unwrap();
        eprintln!(
            "[ablation] crawl budget {k:>2} post iterations: p={:.4} r={:.3}",
            r.p_value, r.effect_size
        );
    }
}

fn bench_ablations(c: &mut Criterion) {
    let ix = shared_paper_ix();
    print_value_ablations(ix);

    let personas = Persona::echo_personas();
    let window = ix.obs.post_window();
    let common = common_slots(ix, &personas, window.clone());
    let every = all_slots(ix);
    let fashion = Persona::Interest(alexa_platform::SkillCategory::FashionStyle);

    let mut group = c.benchmark_group("ablation");
    group.bench_function("common_slot_filtering/on", |b| {
        b.iter(|| slot_means(ix, fashion, window.clone(), &common))
    });
    group.bench_function("common_slot_filtering/off", |b| {
        b.iter(|| slot_means(ix, fashion, window.clone(), &every))
    });
    group.bench_function("sampling/slot_means", |b| {
        b.iter(|| {
            let t = slot_means(ix, fashion, window.clone(), &common);
            let v = slot_means(ix, Persona::Vanilla, window.clone(), &common);
            mann_whitney_u(&t, &v, Alternative::Greater, MwuMethod::Asymptotic)
        })
    });
    group.bench_function("sampling/pooled_bids", |b| {
        b.iter(|| {
            let t = pooled_bids(ix, fashion, window.clone(), &common);
            let v = pooled_bids(ix, Persona::Vanilla, window.clone(), &common);
            mann_whitney_u(&t, &v, Alternative::Greater, MwuMethod::Asymptotic)
        })
    });

    // Exact vs asymptotic MWU at the paper's common-slot sample size.
    let t = slot_means(ix, fashion, window.clone(), &common);
    let v = slot_means(ix, Persona::Vanilla, window.clone(), &common);
    let t25: Vec<f64> = t.iter().copied().take(25).collect();
    let v25: Vec<f64> = v.iter().copied().take(25).collect();
    group.bench_function("mwu/exact_n25", |b| {
        b.iter(|| mann_whitney_u(&t25, &v25, Alternative::Greater, MwuMethod::Exact))
    });
    group.bench_function("mwu/asymptotic_n25", |b| {
        b.iter(|| mann_whitney_u(&t25, &v25, Alternative::Greater, MwuMethod::Asymptotic))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
