//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! * common-slot filtering vs pooling every slot (§3.3's control);
//! * slot-mean sampling vs pooled-bid sampling for the significance tests;
//! * PoliCheck with vs without the platform policy (§7.2.2);
//! * exact vs asymptotic Mann–Whitney at the paper's sample size.
//!
//! Each variant is measured on the shared paper-scale run; the *value*
//! differences between variants are printed once at startup so the ablation
//! results are visible alongside the timings.

use alexa_audit::analysis::bids::{common_slots, pooled_bids, slot_means};
use alexa_audit::{Observations, Persona};
use alexa_bench::shared_paper_run;
use alexa_stats::{mann_whitney_u, Alternative, MwuMethod};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;

fn all_slots(obs: &Observations) -> BTreeSet<String> {
    obs.crawl
        .values()
        .flat_map(|visits| {
            visits
                .iter()
                .flat_map(|v| v.bids.iter().map(|b| b.slot_id.clone()))
        })
        .collect()
}

fn print_value_ablations(obs: &Observations) {
    let personas = Persona::echo_personas();
    let common = common_slots(obs, &personas, obs.post_window());
    let every = all_slots(obs);
    let fashion = Persona::Interest(alexa_platform::SkillCategory::FashionStyle);

    let with_filter = {
        let t = slot_means(obs, fashion, obs.post_window(), &common);
        let v = slot_means(obs, Persona::Vanilla, obs.post_window(), &common);
        mann_whitney_u(&t, &v, Alternative::Greater, MwuMethod::Asymptotic).unwrap()
    };
    let without_filter = {
        let t = slot_means(obs, fashion, obs.post_window(), &every);
        let v = slot_means(obs, Persona::Vanilla, obs.post_window(), &every);
        mann_whitney_u(&t, &v, Alternative::Greater, MwuMethod::Asymptotic).unwrap()
    };
    eprintln!(
        "[ablation] common-slot filter: p={:.4} r={:.3} ({} slots) | no filter: p={:.4} r={:.3} ({} slots)",
        with_filter.p_value,
        with_filter.effect_size,
        common.len(),
        without_filter.p_value,
        without_filter.effect_size,
        every.len(),
    );

    let pooled_t = pooled_bids(obs, fashion, obs.post_window(), &common);
    let pooled_v = pooled_bids(obs, Persona::Vanilla, obs.post_window(), &common);
    let pooled = mann_whitney_u(
        &pooled_t,
        &pooled_v,
        Alternative::Greater,
        MwuMethod::Asymptotic,
    )
    .unwrap();
    eprintln!(
        "[ablation] slot-mean sample: p={:.4} (n={}) | pooled-bid sample: p={:.6} (n={})",
        with_filter.p_value,
        common.len(),
        pooled.p_value,
        pooled_t.len(),
    );

    // Crawl-budget ablation (DESIGN.md §6): how many post-interaction
    // iterations does the Table 7 inference need?
    for k in [3usize, 10, 25] {
        let window = obs.pre_iterations..(obs.pre_iterations + k.min(obs.post_iterations));
        let slots_k = common_slots(obs, &personas, window.clone());
        let t = slot_means(obs, fashion, window.clone(), &slots_k);
        let v = slot_means(obs, Persona::Vanilla, window, &slots_k);
        let r = mann_whitney_u(&t, &v, Alternative::Greater, MwuMethod::Asymptotic).unwrap();
        eprintln!(
            "[ablation] crawl budget {k:>2} post iterations: p={:.4} r={:.3}",
            r.p_value, r.effect_size
        );
    }
}

fn bench_ablations(c: &mut Criterion) {
    let obs = shared_paper_run();
    print_value_ablations(obs);

    let personas = Persona::echo_personas();
    let common = common_slots(obs, &personas, obs.post_window());
    let every = all_slots(obs);
    let fashion = Persona::Interest(alexa_platform::SkillCategory::FashionStyle);

    let mut group = c.benchmark_group("ablation");
    group.bench_function("common_slot_filtering/on", |b| {
        b.iter(|| slot_means(obs, fashion, obs.post_window(), &common))
    });
    group.bench_function("common_slot_filtering/off", |b| {
        b.iter(|| slot_means(obs, fashion, obs.post_window(), &every))
    });
    group.bench_function("sampling/slot_means", |b| {
        b.iter(|| {
            let t = slot_means(obs, fashion, obs.post_window(), &common);
            let v = slot_means(obs, Persona::Vanilla, obs.post_window(), &common);
            mann_whitney_u(&t, &v, Alternative::Greater, MwuMethod::Asymptotic)
        })
    });
    group.bench_function("sampling/pooled_bids", |b| {
        b.iter(|| {
            let t = pooled_bids(obs, fashion, obs.post_window(), &common);
            let v = pooled_bids(obs, Persona::Vanilla, obs.post_window(), &common);
            mann_whitney_u(&t, &v, Alternative::Greater, MwuMethod::Asymptotic)
        })
    });

    // Exact vs asymptotic MWU at the paper's common-slot sample size.
    let t = slot_means(obs, fashion, obs.post_window(), &common);
    let v = slot_means(obs, Persona::Vanilla, obs.post_window(), &common);
    let t25: Vec<f64> = t.iter().copied().take(25).collect();
    let v25: Vec<f64> = v.iter().copied().take(25).collect();
    group.bench_function("mwu/exact_n25", |b| {
        b.iter(|| mann_whitney_u(&t25, &v25, Alternative::Greater, MwuMethod::Exact))
    });
    group.bench_function("mwu/asymptotic_n25", |b| {
        b.iter(|| mann_whitney_u(&t25, &v25, Alternative::Greater, MwuMethod::Asymptotic))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
