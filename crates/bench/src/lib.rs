//! Benchmark and reproduction harness.
//!
//! Two deliverables live here:
//!
//! * the **`repro` binary** (`src/bin/repro.rs`) — regenerates every table
//!   and figure of the paper's evaluation from a fresh paper-scale audit
//!   run (`repro all`, or `repro table5`, `repro figure3`, …);
//! * the **criterion benches** (`benches/`) — performance characterization
//!   of the framework's hot paths (auction, capture pipeline, statistics,
//!   PoliCheck matching, catalog generation, end-to-end run) plus the
//!   ablation studies called out in DESIGN.md §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use alexa_audit::{AuditConfig, AuditRun, Observations};
use std::sync::OnceLock;

/// A shared paper-scale run for benches that only *read* observations
/// (computed once per process).
pub fn shared_paper_run() -> &'static Observations {
    static OBS: OnceLock<Observations> = OnceLock::new();
    OBS.get_or_init(|| AuditRun::execute(AuditConfig::paper(7)))
}

/// A shared reduced run for cheaper benches.
pub fn shared_small_run() -> &'static Observations {
    static OBS: OnceLock<Observations> = OnceLock::new();
    OBS.get_or_init(|| AuditRun::execute(AuditConfig::small(7)))
}
