//! Benchmark and reproduction harness.
//!
//! Two deliverables live here:
//!
//! * the **`repro` binary** (`src/bin/repro.rs`) — regenerates every table
//!   and figure of the paper's evaluation from a fresh paper-scale audit
//!   run (`repro all`, or `repro table5`, `repro figure3`, …);
//! * the **criterion benches** (`benches/`) — performance characterization
//!   of the framework's hot paths (auction, capture pipeline, statistics,
//!   PoliCheck matching, catalog generation, end-to-end run) plus the
//!   ablation studies called out in DESIGN.md §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;

use alexa_audit::analysis::defense;
use alexa_audit::{artifacts, AnalysisIndex, AuditConfig, AuditRun, DefenseMode, Observations};
use alexa_fault::FaultProfile;
use alexa_obs::Recorder;
use std::sync::OnceLock;

/// Every artifact `repro` can render, in paper order — `repro all` renders
/// exactly this list.
pub const ARTIFACTS: &[&str] = &[
    "table1", "table2", "table3", "table4", "figure2", "table5", "table6", "figure3", "table7",
    "table8", "table9", "figure5", "sync", "table10", "figure6", "table11", "figure7", "table12",
    "stats71", "table13", "table13p", "table14", "validate", "liars", "defenses",
];

/// Produce the two defended observable records (firewall, text-only) the
/// `defenses` artifact compares against the baseline.
///
/// Every defense is a pure per-packet transform at the tap boundary, so on a
/// fault-free run the defended record is *derived* from the baseline instead
/// of re-executing the whole pipeline twice (`defense.rs` documents the
/// equivalence; a digest test enforces it). Injected tap faults key off
/// post-defense packet sequence numbers, so faulted runs still execute for
/// real.
pub fn defended_records(
    seed: u64,
    jobs: Option<usize>,
    fault: &FaultProfile,
    baseline: &Observations,
) -> (Observations, Observations) {
    if fault.is_active() {
        eprintln!("running defended audits (firewall, text-only) ...");
        let fw = AuditRun::execute(
            AuditConfig::paper(seed)
                .with_defense(DefenseMode::Firewall)
                .with_faults(fault.clone())
                .with_jobs(jobs),
        );
        let to = AuditRun::execute(
            AuditConfig::paper(seed)
                .with_defense(DefenseMode::TextOnly)
                .with_faults(fault.clone())
                .with_jobs(jobs),
        );
        (fw, to)
    } else {
        eprintln!("deriving defended records (firewall, text-only) ...");
        (
            defense::derive_defended(baseline, DefenseMode::Firewall),
            defense::derive_defended(baseline, DefenseMode::TextOnly),
        )
    }
}

/// Stream the two defense comparisons into `out`; returns render work units.
/// The defended indices are built outside `render.all` (they are analysis
/// input, not rendering), so this is a pure index scan + stream.
fn render_defenses_into(
    baseline: &AnalysisIndex,
    defended: &(AnalysisIndex, AnalysisIndex),
    out: &mut String,
) -> usize {
    let (firewalled_ix, text_only_ix) = defended;
    let mut work = defense::compare(
        "A&T firewall (blocking without breaking)",
        baseline,
        firewalled_ix,
    )
    .render_into(out);
    out.push('\n');
    work += defense::compare(
        "on-device transcription (text-only)",
        baseline,
        text_only_ix,
    )
    .render_into(out);
    work
}

/// Render the wanted artifacts concurrently, returning them in input order.
/// Each artifact render is its own observability shard.
///
/// The shared [`AnalysisIndex`] is built exactly once (its own `index.build`
/// stage) and every artifact streams from it; the fan-out is clamped to the
/// host's hardware threads because oversubscribing a CPU-bound render pass
/// only adds contention (bytes are jobs-independent either way).
pub fn render_all(
    obs: &Observations,
    wanted: &[&str],
    seed: u64,
    jobs: Option<usize>,
    fault: &FaultProfile,
    rec: &Recorder,
) -> Vec<String> {
    let ix = rec.stage("index.build", || AnalysisIndex::build(obs));
    // The `defenses` artifact compares the baseline against two defended
    // observable records. Producing those records and indexing them is
    // analysis-input construction, not rendering, so it gets its own
    // top-level stages and `render.all` stays a pure streaming pass.
    let defended_obs = wanted.contains(&"defenses").then(|| {
        rec.stage("derive.defended", || {
            defended_records(seed, jobs, fault, obs)
        })
    });
    let defended_ix = defended_obs.as_ref().map(|(fw, to)| {
        rec.stage("index.defended", || {
            (AnalysisIndex::build(fw), AnalysisIndex::build(to))
        })
    });
    rec.stage("render.all", || {
        let render_jobs = Some(alexa_exec::clamped_jobs(jobs));
        alexa_exec::par_map(render_jobs, wanted.to_vec(), |i, artifact| {
            let mut log = rec.shard("artifact", i, artifact);
            // Allocation window == the render body: every rendered byte is
            // attributed to this artifact's shard, deterministically.
            log.alloc_open();
            let rendered = log.span("render", |log| {
                let mut buf = String::with_capacity(4096);
                let units = if artifact == "defenses" {
                    // analyzer:allow(AP02) -- guarded above: defended_ix is Some whenever "defenses" is wanted
                    let defended = defended_ix.as_ref().expect("defended indices built");
                    render_defenses_into(&ix, defended, &mut buf)
                } else {
                    // analyzer:allow(AP02) -- every caller passes names from ARTIFACTS; repro rejects unknowns at parse time (exit 2)
                    artifacts::render_into(&ix, artifact, &mut buf).expect("artifact known")
                };
                log.work(units as u64);
                buf
            });
            log.add("render.bytes", rendered.len() as u64);
            log.alloc_seal();
            rec.submit(log);
            rendered
        })
    })
}

/// A shared paper-scale run for benches that only *read* observations
/// (computed once per process).
pub fn shared_paper_run() -> &'static Observations {
    static OBS: OnceLock<Observations> = OnceLock::new();
    OBS.get_or_init(|| AuditRun::execute(AuditConfig::paper(7)))
}

/// The shared paper-scale run's [`AnalysisIndex`] (built once per process),
/// for benches exercising the index-backed analysis paths.
pub fn shared_paper_ix() -> &'static AnalysisIndex<'static> {
    static IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();
    IX.get_or_init(|| AnalysisIndex::build(shared_paper_run()))
}

/// A shared reduced run for cheaper benches.
pub fn shared_small_run() -> &'static Observations {
    static OBS: OnceLock<Observations> = OnceLock::new();
    OBS.get_or_init(|| AuditRun::execute(AuditConfig::small(7)))
}
