//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro all                 # everything, in paper order
//! repro table5 figure3      # specific artifacts
//! repro --seed 11 table7    # different seed
//! repro --jobs 4 all        # cap the engine's worker threads
//! repro --trace all         # human-readable span tree on stderr
//! repro --metrics-out m.json all   # JSON metrics export
//! repro --mem-out mem.json all     # deterministic allocation-plane export
//! repro --trace-out t.txt all      # span tree to a file (- = stderr)
//! repro --profile-out p.folded all # folded-stack work profile
//! repro --run-dir run-a all        # self-describing run-ledger bundle
//! repro --fault-profile flaky all  # run under a fault-plane preset
//! repro --fault-rate 0.2 all       # uniform fault rate on every channel
//! repro --backend process all      # shard fan-out via child processes
//! repro --worker-timeout-ms 5000 --backend process all  # per-shard timeout
//! repro --shard-worker             # (internal) process-backend worker loop
//! repro --bench             # time a paper-scale run, write BENCH_audit.json
//! repro --list              # list artifact names
//! repro campaign plan.json  # execute a declarative experiment plan
//! ```
//!
//! Output is byte-identical for every `--jobs` value (the engine's
//! determinism invariant); `--jobs 1` is the sequential reference. The
//! observability flags never change stdout: the trace goes to stderr and the
//! metrics to their own file, so traced and untraced runs stay diffable.
//! Every output flag accepts `-` to stream to **stderr** instead of a file,
//! keeping stdout byte-exact either way.
//!
//! `--run-dir DIR` writes a five-file run-ledger bundle (manifest, metrics,
//! trace, memory, folded profile — see `alexa_obs::bundle`) whose bytes
//! depend only on `(seed, fault profile)`, never on `--jobs`; compare
//! bundles with the `obs-diff` tool. `--mem-out` exports the same
//! deterministic memory document standalone: per-stage and per-shard
//! allocation counts and bytes plus size histograms, byte-identical across
//! `--jobs` values and backends (OS peak RSS stays on the volatile channel
//! of the metrics document, never here).
//!
//! `repro campaign PLAN [--out DIR]` executes a declarative experiment plan
//! (seeds × faults × defenses × jobs × backends, with repeats) into a
//! campaign directory of cell bundles plus derived analysis tables, resuming
//! over cells that are already complete — see `alexa_bench::campaign`.
//!
//! `--backend thread|process|mock-remote` selects the shard execution
//! backend (DESIGN.md §15); all three produce byte-identical output for a
//! given `(seed, fault profile)`. `--shard-worker` is the internal child
//! entry point the `process` backend spawns — one wire-encoded shard spec
//! per stdin line, one reply per stdout line.
//!
//! Any unknown artifact name or flag is a hard error (exit 2) — including
//! alongside `all` — so a typo in a CI invocation can never pass green.
//!
//! # Exit codes
//!
//! * `0` — complete run (campaigns: including when some cells degraded —
//!   degradation is recorded per cell in `campaign.json`).
//! * `1` — I/O failure, or a campaign determinism violation (instances of
//!   one cell identity differ byte-wise).
//! * `2` — usage error (unknown flag/artifact, bad value, invalid plan,
//!   `--run-dir` pointing at a foreign directory).
//! * `3` — **degraded but valid**: injected faults cost observations after
//!   retry, or a shard's retry budget exhausted. The report (with its
//!   coverage block) is still fully rendered and deterministic.

use alexa_audit::{AuditConfig, AuditRun, Observations};
use alexa_bench::{campaign, render_all, ARTIFACTS};
use alexa_fault::FaultProfile;
use alexa_obs::bundle::BundleSpec;
use alexa_obs::{Json, Recorder};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Write `body` to `path`, with `-` streaming to stderr. File write errors
/// are fatal (exit 1): a CI artifact silently missing is worse than a loud
/// failure.
fn write_output(path: &str, what: &str, body: &str) {
    if path == "-" {
        eprint!("{body}");
        return;
    }
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: cannot write {what} to {path:?}: {e}");
        std::process::exit(1); // analyzer:allow(AS04) -- fatal I/O failure, deliberately distinct from the documented run statuses
    }
    eprintln!("{what} written to {path}");
}

/// `--bench`: time the paper-scale execute plus a full `repro all` rendering
/// pass and append the data point — with the recorder's per-stage breakdown
/// — to `BENCH_audit.json` at the repo root. Returns the observations so the
/// observability surfaces (`--run-dir`, ...) can describe the benched run.
fn run_bench(seed: u64, jobs: Option<usize>, rec: &Recorder) -> Observations {
    let workers = alexa_exec::effective_jobs(jobs);
    eprintln!("benchmarking paper-scale audit (seed {seed}, {workers} worker(s)) ...");

    let t0 = Instant::now();
    let obs = AuditRun::execute_with(AuditConfig::paper(seed).with_jobs(jobs), rec);
    let execute_ms = t0.elapsed().as_millis() as u64;

    let t1 = Instant::now();
    let rendered = render_all(&obs, ARTIFACTS, seed, jobs, &FaultProfile::none(), rec);
    let render_ms = t1.elapsed().as_millis() as u64;
    let rendered_bytes: usize = rendered.iter().map(String::len).sum();

    // Per-stage wall times from the recorder, millisecond precision — the
    // breakdown future perf PRs regress against — plus the deterministic
    // work-unit figure per stage (schedule-independent context).
    let report = rec.report();
    let stages: Vec<(String, Json)> = report
        .stages
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| (s.name.clone(), Json::Int(s.dur_us / 1000)))
        .collect();
    let stage_work: Vec<(String, Json)> = report
        .stages
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| (s.name.clone(), Json::Int(s.work)))
        .collect();
    // Per-stage allocated bytes: deterministic for a fixed seed, so the
    // obs-diff gate can hold a much tighter threshold on these than on the
    // (noisy) wall-clock columns.
    let stage_alloc: Vec<(String, Json)> = report
        .stages
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| (s.name.clone(), Json::Int(s.alloc_bytes)))
        .collect();
    // Derived throughput: deterministic work units per wall-clock
    // millisecond — normalises total_ms across machines of different speed.
    let total_ms = execute_ms + render_ms;
    let total_work: u64 = report
        .stages
        .iter()
        .filter(|s| s.depth == 0)
        .map(|s| s.work)
        .sum();
    let work_per_ms = total_work as f64 / total_ms.max(1) as f64;

    let entry = Json::Obj(vec![
        ("seed".into(), Json::Int(seed)),
        (
            "jobs".into(),
            jobs.map_or(Json::Null, |n| Json::Int(n as u64)),
        ),
        (
            "hardware_threads".into(),
            Json::Int(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1) as u64,
            ),
        ),
        ("execute_ms".into(), Json::Int(execute_ms)),
        ("render_all_ms".into(), Json::Int(render_ms)),
        ("total_ms".into(), Json::Int(total_ms)),
        ("work_per_ms".into(), Json::Float(work_per_ms)),
        ("rendered_bytes".into(), Json::Int(rendered_bytes as u64)),
        ("stages".into(), Json::Obj(stages)),
        ("stage_work".into(), Json::Obj(stage_work)),
        ("stage_alloc".into(), Json::Obj(stage_alloc)),
    ])
    .render();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_audit.json");
    // Append as JSON lines so successive benchmark points accumulate.
    let mut log = std::fs::read_to_string(path).unwrap_or_default();
    log.push_str(&entry);
    log.push('\n');
    std::fs::write(path, log).expect("write BENCH_audit.json");
    eprintln!("execute: {execute_ms} ms, render all: {render_ms} ms");
    println!("{entry}");
    obs
}

/// Write every observability surface the flags asked for: the stderr trace,
/// `--trace-out` / `--metrics-out` / `--profile-out` documents (each taking
/// `-` for stderr) and the `--run-dir` run-ledger bundle.
fn emit_observability(rec: &Recorder, cli: &Cli, obs: &Observations) {
    if !rec.is_enabled() {
        return;
    }
    let report = rec.report();
    if cli.trace {
        eprint!("{}", report.render_tree());
    }
    if let Some(path) = cli.trace_out.as_deref() {
        write_output(path, "trace", &report.render_tree());
    }
    if let Some(path) = cli.profile_out.as_deref() {
        write_output(path, "profile", &report.folded_profile());
    }
    if let Some(path) = cli.metrics_out.as_deref() {
        let cov = &obs.coverage;
        let mut fields = vec![
            ("seed".to_string(), Json::Int(cli.seed)),
            (
                "jobs".to_string(),
                cli.jobs.map_or(Json::Null, |n| Json::Int(n as u64)),
            ),
            ("fault_profile".to_string(), Json::Str(cov.profile.clone())),
            (
                "fault_injected".to_string(),
                Json::Int(cov.total_injected()),
            ),
            ("fault_retries".to_string(), Json::Int(cov.retries)),
            ("fault_backoff_ms".to_string(), Json::Int(cov.backoff_ms)),
            ("fault_losses".to_string(), Json::Int(cov.losses)),
            ("degraded".to_string(), Json::Bool(cov.is_degraded())),
        ];
        match report.to_json() {
            Json::Obj(inner) => fields.extend(inner),
            other => fields.push(("report".to_string(), other)),
        }
        write_output(path, "metrics", &(Json::Obj(fields).render() + "\n"));
    }
    if let Some(path) = cli.mem_out.as_deref() {
        // Same document as the bundle's memory.json: the deterministic
        // allocation plane only — OS RSS stays on the volatile channel.
        write_output(
            path,
            "memory",
            &(report.ledger_memory_json().render() + "\n"),
        );
    }
    if let Some(dir) = cli.run_dir.as_deref() {
        let mut spec = run_dir_spec(cli);
        spec.observations_digest = obs.digest();
        spec.coverage = Some(obs.coverage.to_json());
        if let Err(e) = alexa_obs::bundle::write_bundle(Path::new(dir), &spec, &report) {
            eprintln!("error: cannot write run bundle to {dir:?}: {e}");
            std::process::exit(1); // analyzer:allow(AS04) -- fatal I/O failure, deliberately distinct from the documented run statuses
        }
        eprintln!("run bundle written to {dir}");
    }
}

/// The run-identity spec of this invocation's `--run-dir` bundle (digest
/// and coverage are filled in after the run; identity ignores both).
fn run_dir_spec(cli: &Cli) -> BundleSpec {
    BundleSpec {
        seed: cli.seed,
        fault_profile: cli.fault.name().to_string(),
        defense: None,
        campaign: None,
        observations_digest: 0,
        coverage: None,
    }
}

/// Refuse a `--run-dir` target that is non-empty and not this experiment's
/// bundle (exit 2) — checked *before* the run so hours of execution can
/// never end by destroying foreign data. The same predicate drives the
/// campaign runner's resume detection.
fn guard_run_dir(cli: &Cli) {
    let Some(dir) = cli.run_dir.as_deref() else {
        return;
    };
    if let Err(conflict) = alexa_obs::bundle::check_run_dir(Path::new(dir), &run_dir_spec(cli)) {
        eprintln!("error: {conflict}");
        std::process::exit(2);
    }
}

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: repro [--seed N] [--jobs N] [--trace] [--metrics-out PATH] \
         [--mem-out PATH] [--trace-out PATH] [--profile-out PATH] [--run-dir DIR] \
         [--fault-profile none|flaky|degraded|hostile] [--fault-rate R] \
         [--backend thread|process|mock-remote] [--worker-timeout-ms N] \
         <artifact>... | all | --bench | --list"
    );
    eprintln!("       repro campaign PLAN [--out DIR]");
    eprintln!("output PATHs accept '-' to stream to stderr");
    eprintln!("artifacts: {}", ARTIFACTS.join(" "));
    std::process::exit(code);
}

/// `repro campaign PLAN [--out DIR]` — execute a declarative experiment
/// plan. Own tiny argument grammar: the campaign's axes (seed, faults,
/// jobs, ...) live in the plan document, not on the command line.
fn run_campaign_cli(args: &[String]) -> ! {
    let mut plan: Option<String> = None;
    let mut out: Option<String> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out = Some(dir.clone()),
                None => {
                    eprintln!("error: --out expects a directory");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => usage(0),
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown campaign flag {flag:?}");
                usage(2);
            }
            path => {
                if plan.is_some() {
                    eprintln!("error: campaign expects exactly one plan file");
                    usage(2);
                }
                plan = Some(path.to_string());
            }
        }
    }
    let Some(plan) = plan else {
        eprintln!("error: campaign expects a plan file");
        usage(2);
    };
    let rec = Arc::new(Recorder::new());
    alexa_obs::install_global(rec.clone());
    match campaign::run_campaign(Path::new(&plan), out.as_deref().map(Path::new), &rec) {
        Ok(summary) => {
            print!("{}", summary.render());
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

struct Cli {
    seed: u64,
    jobs: Option<usize>,
    trace: bool,
    metrics_out: Option<String>,
    mem_out: Option<String>,
    trace_out: Option<String>,
    profile_out: Option<String>,
    run_dir: Option<String>,
    fault: FaultProfile,
    backend: alexa_exec::BackendChoice,
    worker_timeout_ms: u64,
    bench: bool,
    list: bool,
    all: bool,
    artifacts: Vec<String>,
}

/// Parse and *fully validate* the command line: every artifact name is
/// checked against the known list (even when `all` is also present) and
/// unknown flags are rejected, so a typo exits 2 instead of silently
/// rendering nothing.
fn parse_cli() -> Cli {
    let mut cli = Cli {
        seed: 7,
        jobs: None,
        trace: false,
        metrics_out: None,
        mem_out: None,
        trace_out: None,
        profile_out: None,
        run_dir: None,
        fault: FaultProfile::none(),
        backend: alexa_exec::BackendChoice::Thread,
        worker_timeout_ms: 30_000,
        bench: false,
        list: false,
        all: false,
        artifacts: Vec::new(),
    };
    let mut args = std::env::args().skip(1).peekable();
    let value = |args: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} expects a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                cli.seed = value(&mut args, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed expects an integer");
                    std::process::exit(2);
                })
            }
            "--jobs" => {
                cli.jobs = Some(value(&mut args, "--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("error: --jobs expects an integer");
                    std::process::exit(2);
                }))
            }
            "--trace" => cli.trace = true,
            "--metrics-out" => cli.metrics_out = Some(value(&mut args, "--metrics-out")),
            "--mem-out" => cli.mem_out = Some(value(&mut args, "--mem-out")),
            "--trace-out" => cli.trace_out = Some(value(&mut args, "--trace-out")),
            "--profile-out" => cli.profile_out = Some(value(&mut args, "--profile-out")),
            "--run-dir" => {
                let dir = value(&mut args, "--run-dir");
                if dir == "-" {
                    eprintln!("error: --run-dir expects a directory, not '-'");
                    std::process::exit(2);
                }
                cli.run_dir = Some(dir);
            }
            "--fault-profile" => {
                cli.fault = value(&mut args, "--fault-profile")
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    })
            }
            "--fault-rate" => {
                let rate: f64 = value(&mut args, "--fault-rate")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("error: --fault-rate expects a number in [0, 1]");
                        std::process::exit(2);
                    });
                if !(0.0..=1.0).contains(&rate) {
                    eprintln!("error: --fault-rate expects a number in [0, 1]");
                    std::process::exit(2);
                }
                cli.fault = FaultProfile::uniform(rate);
            }
            "--backend" => {
                cli.backend = value(&mut args, "--backend").parse().unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                })
            }
            "--worker-timeout-ms" => {
                cli.worker_timeout_ms = value(&mut args, "--worker-timeout-ms")
                    .parse()
                    .ok()
                    .filter(|ms| *ms > 0)
                    .unwrap_or_else(|| {
                        eprintln!("error: --worker-timeout-ms expects a positive integer");
                        std::process::exit(2);
                    })
            }
            "--bench" => cli.bench = true,
            "--list" => cli.list = true,
            "--help" | "-h" => usage(0),
            "all" => cli.all = true,
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag:?}");
                usage(2);
            }
            artifact => {
                if !ARTIFACTS.contains(&artifact) {
                    eprintln!("error: unknown artifact {artifact:?} (try --list)");
                    std::process::exit(2);
                }
                cli.artifacts.push(artifact.to_string());
            }
        }
    }
    cli
}

fn main() {
    // The campaign subcommand has its own grammar; dispatch before the
    // flag parser so plan paths are never mistaken for artifact names.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("campaign") {
        run_campaign_cli(&argv[1..]);
    }
    // The process-backend worker loop: wire-encoded shard specs on stdin,
    // replies on stdout. Dispatched before the flag parser because it shares
    // no grammar with the artifact CLI.
    if argv.first().map(String::as_str) == Some("--shard-worker") {
        std::process::exit(alexa_audit::worker::run_shard_worker());
    }

    let cli = parse_cli();
    if cli.list {
        for a in ARTIFACTS {
            println!("{a}");
        }
        return;
    }
    guard_run_dir(&cli);

    // The recorder: enabled whenever any observability surface is on, and
    // installed globally so leaf libraries (stats, crawler) feed it too.
    let observing = cli.trace
        || cli.metrics_out.is_some()
        || cli.mem_out.is_some()
        || cli.trace_out.is_some()
        || cli.profile_out.is_some()
        || cli.run_dir.is_some()
        || cli.bench;
    let rec = Arc::new(if observing {
        Recorder::new()
    } else {
        Recorder::disabled()
    });
    alexa_obs::install_global(rec.clone());

    if cli.bench {
        let obs = run_bench(cli.seed, cli.jobs, &rec);
        emit_observability(&rec, &cli, &obs);
        return;
    }
    if cli.artifacts.is_empty() && !cli.all {
        usage(2);
    }

    let wanted: Vec<&str> = if cli.all {
        ARTIFACTS.to_vec()
    } else {
        cli.artifacts.iter().map(String::as_str).collect()
    };

    eprintln!("running paper-scale audit (seed {}) ...", cli.seed);
    if cli.fault.is_active() {
        eprintln!("fault profile: {}", cli.fault.name());
    }
    let mut config = AuditConfig::paper(cli.seed)
        .with_faults(cli.fault.clone())
        .with_jobs(cli.jobs)
        .with_backend(cli.backend)
        .with_worker_timeout_ms(cli.worker_timeout_ms);
    if cli.backend == alexa_exec::BackendChoice::Process {
        config = config.with_worker_cmd(alexa_bench::campaign::default_worker_cmd());
    }
    let obs = AuditRun::execute_with(config, &rec);
    // Under an active fault profile the coverage block leads stdout, so any
    // artifact subset still reports what the run actually observed. It is
    // deterministic (counts only), keeping jobs-diff CI byte-exact.
    if cli.fault.is_active() {
        println!("{}", obs.coverage.render());
    }
    for artifact in render_all(&obs, &wanted, cli.seed, cli.jobs, &cli.fault, &rec) {
        println!("{artifact}");
    }
    emit_observability(&rec, &cli, &obs);
    if obs.coverage.is_degraded() {
        eprintln!("run degraded: injected faults cost observations (exit 3)");
        std::process::exit(3);
    }
}
