//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro all                 # everything, in paper order
//! repro table5 figure3      # specific artifacts
//! repro --seed 11 table7    # different seed
//! repro --list              # list artifact names
//! ```

use alexa_audit::analysis::{
    audio, bids, creatives, defense, partners, policy, profiling, significance, traffic,
};
use alexa_audit::{AuditConfig, AuditRun, DefenseMode, Observations};

const ARTIFACTS: &[&str] = &[
    "table1", "table2", "table3", "table4", "figure2", "table5", "table6", "figure3",
    "table7", "table8", "table9", "figure5", "sync", "table10", "figure6", "table11",
    "figure7", "table12", "stats71", "table13", "table13p", "table14", "validate",
    "liars", "defenses",
];

fn render(obs: &Observations, artifact: &str) -> Option<String> {
    Some(match artifact {
        "table1" => traffic::table1(obs).render(),
        "table2" => traffic::table2(obs).render(),
        "table3" => traffic::table3(obs).render(),
        "table4" => traffic::table4(obs).render(),
        "figure2" => traffic::figure2(obs).render(),
        "table5" => bids::table5(obs).render(),
        "table6" => bids::table6(obs).render(),
        "figure3" => bids::figure3(obs).render(),
        "table7" => significance::table7(obs).render(),
        "table8" => creatives::table8(obs).render(),
        "table9" => audio::table9(obs).render(),
        "figure5" => audio::figure5(obs).render(),
        "sync" => partners::sync_analysis(obs).render(),
        "table10" => partners::table10(obs).render(),
        "figure6" => partners::figure6(obs).render(),
        "table11" => significance::table11(obs).render(),
        "figure7" => bids::figure7(obs).render(),
        "table12" => profiling::table12(obs).render(),
        "stats71" => policy::policy_stats(obs).render(),
        "table13" => policy::table13(obs, false).render(),
        "table13p" => {
            let t = policy::table13(obs, true);
            let mut s = t.render();
            s.push_str(&format!(
                "(platform policy included — all flows disclosed: {})\n",
                t.all_disclosed()
            ));
            s
        }
        "table14" => policy::table14(obs).render(),
        "validate" => policy::validation(obs).render(),
        "liars" => {
            let flows = policy::incorrect_flows(obs);
            let mut s = String::from(
                "Policies that DENY flows their traffic shows (PoliCheck 'incorrect'):\n",
            );
            for (skill, dt) in &flows {
                s.push_str(&format!("  {skill}: denies collecting {dt}\n"));
            }
            if flows.is_empty() {
                s.push_str("  (none)\n");
            }
            s
        }
        _ => return None,
    })
}

/// The `defenses` artifact needs its own defended runs.
fn render_defenses(seed: u64, baseline: &Observations) -> String {
    eprintln!("running defended audits (firewall, text-only) ...");
    let firewalled =
        AuditRun::execute(AuditConfig::paper(seed).with_defense(DefenseMode::Firewall));
    let text_only =
        AuditRun::execute(AuditConfig::paper(seed).with_defense(DefenseMode::TextOnly));
    format!(
        "{}\n{}",
        defense::compare("A&T firewall (blocking without breaking)", baseline, &firewalled)
            .render(),
        defense::compare("on-device transcription (text-only)", baseline, &text_only).render(),
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 7u64;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        args.remove(pos);
        if pos < args.len() {
            seed = args.remove(pos).parse().unwrap_or_else(|_| {
                eprintln!("--seed expects an integer");
                std::process::exit(2);
            });
        }
    }
    if args.iter().any(|a| a == "--list") {
        for a in ARTIFACTS {
            println!("{a}");
        }
        return;
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--seed N] <artifact>... | all | --list");
        eprintln!("artifacts: {}", ARTIFACTS.join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    let wanted: Vec<&str> = if args.iter().any(|a| a == "all") {
        ARTIFACTS.to_vec()
    } else {
        let mut v = Vec::new();
        for a in &args {
            if !ARTIFACTS.contains(&a.as_str()) {
                eprintln!("unknown artifact {a:?} (try --list)");
                std::process::exit(2);
            }
            v.push(a.as_str());
        }
        v
    };

    eprintln!("running paper-scale audit (seed {seed}) ...");
    let obs = AuditRun::execute(AuditConfig::paper(seed));
    for artifact in wanted {
        if artifact == "defenses" {
            println!("{}", render_defenses(seed, &obs));
        } else {
            println!("{}", render(&obs, artifact).expect("artifact known"));
        }
    }
}
