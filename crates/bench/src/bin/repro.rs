//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro all                 # everything, in paper order
//! repro table5 figure3      # specific artifacts
//! repro --seed 11 table7    # different seed
//! repro --jobs 4 all        # cap the engine's worker threads
//! repro --bench             # time a paper-scale run, write BENCH_audit.json
//! repro --list              # list artifact names
//! ```
//!
//! Output is byte-identical for every `--jobs` value (the engine's
//! determinism invariant); `--jobs 1` is the sequential reference.

use alexa_audit::analysis::{
    audio, bids, creatives, defense, partners, policy, profiling, significance, traffic,
};
use alexa_audit::{AuditConfig, AuditRun, DefenseMode, Observations};
use std::time::Instant;

const ARTIFACTS: &[&str] = &[
    "table1", "table2", "table3", "table4", "figure2", "table5", "table6", "figure3",
    "table7", "table8", "table9", "figure5", "sync", "table10", "figure6", "table11",
    "figure7", "table12", "stats71", "table13", "table13p", "table14", "validate",
    "liars", "defenses",
];

fn render(obs: &Observations, artifact: &str) -> Option<String> {
    Some(match artifact {
        "table1" => traffic::table1(obs).render(),
        "table2" => traffic::table2(obs).render(),
        "table3" => traffic::table3(obs).render(),
        "table4" => traffic::table4(obs).render(),
        "figure2" => traffic::figure2(obs).render(),
        "table5" => bids::table5(obs).render(),
        "table6" => bids::table6(obs).render(),
        "figure3" => bids::figure3(obs).render(),
        "table7" => significance::table7(obs).render(),
        "table8" => creatives::table8(obs).render(),
        "table9" => audio::table9(obs).render(),
        "figure5" => audio::figure5(obs).render(),
        "sync" => partners::sync_analysis(obs).render(),
        "table10" => partners::table10(obs).render(),
        "figure6" => partners::figure6(obs).render(),
        "table11" => significance::table11(obs).render(),
        "figure7" => bids::figure7(obs).render(),
        "table12" => profiling::table12(obs).render(),
        "stats71" => policy::policy_stats(obs).render(),
        "table13" => policy::table13(obs, false).render(),
        "table13p" => {
            let t = policy::table13(obs, true);
            let mut s = t.render();
            s.push_str(&format!(
                "(platform policy included — all flows disclosed: {})\n",
                t.all_disclosed()
            ));
            s
        }
        "table14" => policy::table14(obs).render(),
        "validate" => policy::validation(obs).render(),
        "liars" => {
            let flows = policy::incorrect_flows(obs);
            let mut s = String::from(
                "Policies that DENY flows their traffic shows (PoliCheck 'incorrect'):\n",
            );
            for (skill, dt) in &flows {
                s.push_str(&format!("  {skill}: denies collecting {dt}\n"));
            }
            if flows.is_empty() {
                s.push_str("  (none)\n");
            }
            s
        }
        _ => return None,
    })
}

/// The `defenses` artifact needs its own defended runs.
fn render_defenses(seed: u64, jobs: Option<usize>, baseline: &Observations) -> String {
    eprintln!("running defended audits (firewall, text-only) ...");
    let firewalled = AuditRun::execute(
        AuditConfig::paper(seed).with_defense(DefenseMode::Firewall).with_jobs(jobs),
    );
    let text_only = AuditRun::execute(
        AuditConfig::paper(seed).with_defense(DefenseMode::TextOnly).with_jobs(jobs),
    );
    format!(
        "{}\n{}",
        defense::compare("A&T firewall (blocking without breaking)", baseline, &firewalled)
            .render(),
        defense::compare("on-device transcription (text-only)", baseline, &text_only).render(),
    )
}

/// `--bench`: time the paper-scale execute plus a full `repro all` rendering
/// pass and append the data point to `BENCH_audit.json` at the repo root.
fn run_bench(seed: u64, jobs: Option<usize>) {
    let workers = alexa_exec::effective_jobs(jobs);
    eprintln!("benchmarking paper-scale audit (seed {seed}, {workers} worker(s)) ...");

    let t0 = Instant::now();
    let obs = AuditRun::execute(AuditConfig::paper(seed).with_jobs(jobs));
    let execute_ms = t0.elapsed().as_millis();

    let t1 = Instant::now();
    let rendered = render_all(&obs, ARTIFACTS, seed, jobs);
    let render_ms = t1.elapsed().as_millis();
    let rendered_bytes: usize = rendered.iter().map(String::len).sum();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_audit.json");
    let entry = format!(
        "{{\"seed\": {seed}, \"jobs\": {}, \"hardware_threads\": {}, \
         \"execute_ms\": {execute_ms}, \"render_all_ms\": {render_ms}, \
         \"total_ms\": {}, \"rendered_bytes\": {rendered_bytes}}}",
        match jobs {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        },
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        execute_ms + render_ms,
    );
    // Append as JSON lines so successive benchmark points accumulate.
    let mut log = std::fs::read_to_string(path).unwrap_or_default();
    log.push_str(&entry);
    log.push('\n');
    std::fs::write(path, log).expect("write BENCH_audit.json");
    eprintln!("execute: {execute_ms} ms, render all: {render_ms} ms");
    println!("{entry}");
}

/// Render the wanted artifacts concurrently, returning them in input order.
fn render_all(
    obs: &Observations,
    wanted: &[&str],
    seed: u64,
    jobs: Option<usize>,
) -> Vec<String> {
    alexa_exec::par_map(jobs, wanted.to_vec(), |_, artifact| {
        if artifact == "defenses" {
            render_defenses(seed, jobs, obs)
        } else {
            render(obs, artifact).expect("artifact known")
        }
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 7u64;
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        args.remove(pos);
        if pos < args.len() {
            seed = args.remove(pos).parse().unwrap_or_else(|_| {
                eprintln!("--seed expects an integer");
                std::process::exit(2);
            });
        }
    }
    let mut jobs: Option<usize> = None;
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        args.remove(pos);
        if pos < args.len() {
            jobs = Some(args.remove(pos).parse().unwrap_or_else(|_| {
                eprintln!("--jobs expects an integer");
                std::process::exit(2);
            }));
        }
    }
    if args.iter().any(|a| a == "--bench") {
        run_bench(seed, jobs);
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for a in ARTIFACTS {
            println!("{a}");
        }
        return;
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--seed N] [--jobs N] <artifact>... | all | --bench | --list");
        eprintln!("artifacts: {}", ARTIFACTS.join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    let wanted: Vec<&str> = if args.iter().any(|a| a == "all") {
        ARTIFACTS.to_vec()
    } else {
        let mut v = Vec::new();
        for a in &args {
            if !ARTIFACTS.contains(&a.as_str()) {
                eprintln!("unknown artifact {a:?} (try --list)");
                std::process::exit(2);
            }
            v.push(a.as_str());
        }
        v
    };

    eprintln!("running paper-scale audit (seed {seed}) ...");
    let obs = AuditRun::execute(AuditConfig::paper(seed).with_jobs(jobs));
    for artifact in render_all(&obs, &wanted, seed, jobs) {
        println!("{artifact}");
    }
}
