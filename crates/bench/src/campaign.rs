//! `repro campaign` — execute a declarative experiment plan into a campaign
//! directory of run-ledger bundles plus derived analysis tables.
//!
//! A campaign directory is fully deterministic and resumable:
//!
//! ```text
//! campaigns/<name>/
//!   campaign.json                  # schema-versioned manifest (written last)
//!   cells/<cell-key>/              # one run-ledger bundle per cell instance
//!   tables/<table>.{jsonl,md}      # analysis tables derived from the cells
//! ```
//!
//! * **Resume.** A cell whose directory holds a complete bundle (all four
//!   files load) with a manifest recording this plan's hash and the cell's
//!   identity is skipped. Re-invoking a finished campaign executes nothing;
//!   a crash mid-campaign resumes at the first incomplete cell, and the
//!   finished directory is byte-identical to a fresh run's (the campaign
//!   manifest and tables record no execution status or timing).
//! * **Determinism as a first-class assertion.** Worker count and repeat
//!   index are instance coordinates, not identity: after all cells
//!   complete, the runner asserts that every instance of one cell identity
//!   produced byte-identical bundles — the check CI used to hand-roll as
//!   shell `diff` loops over `--jobs` values.
//! * **Analysis tables.** Cells are loaded back through the
//!   `alexa-obsdiff` bundle loader and reduced to JSONL + markdown tables
//!   (observation volume by fault variant, coverage by fault variant,
//!   defense efficacy against the undefended baseline).

use alexa_audit::{AuditConfig, AuditRun, DefenseMode};
use alexa_exec::BackendChoice;
use alexa_fault::FaultProfile;
use alexa_obs::bundle::{
    check_run_dir, write_bundle, BundleSpec, CampaignCell, RunDirConflict, RunDirState,
    MANIFEST_FILE, MEMORY_FILE, METRICS_FILE, PROFILE_FILE, TRACE_FILE,
};
use alexa_obs::campaign::{
    campaign_manifest, uniform_fault_rate, CellCoord, CellRecord, Plan, PlanError, Scale,
    CAMPAIGN_FILE, CELLS_DIR, TABLES_DIR,
};
use alexa_obs::{install_global, Json, Recorder};
use alexa_obsdiff::{load_bundle, LoadedBundle};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The analysis tables every campaign derives, in render order. Each name
/// yields `tables/<name>.jsonl` and `tables/<name>.md`.
pub const TABLES: &[&str] = &["bids_by_fault", "coverage_by_fault", "defense_efficacy"];

/// Why a campaign could not run to completion.
#[derive(Debug)]
pub enum CampaignError {
    /// The plan file could not be read.
    PlanUnreadable {
        /// The plan path.
        path: PathBuf,
        /// The I/O error text.
        error: String,
    },
    /// The plan file was rejected by the parser (usage error).
    Plan {
        /// The plan path.
        path: PathBuf,
        /// The typed parse failure.
        error: PlanError,
    },
    /// The campaign directory belongs to a different plan (usage error).
    PlanChanged {
        /// The campaign directory.
        dir: PathBuf,
        /// The plan hash its manifest records.
        found: String,
        /// This plan's hash.
        expected: String,
    },
    /// A cell directory holds something that is not this cell's bundle
    /// (usage error — the runner refuses to overwrite foreign data).
    CellConflict(RunDirConflict),
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The I/O error text.
        error: String,
    },
    /// A completed cell's bundle failed to load back for verification.
    CellUnloadable {
        /// The cell key.
        key: String,
        /// The loader's error text.
        error: String,
    },
    /// Two instances of one cell identity produced different bytes — the
    /// determinism contract is broken.
    DeterminismBreak {
        /// The cell identity.
        id: String,
        /// The bundle file that differs.
        file: String,
        /// The reference instance's key.
        reference: String,
        /// The divergent instance's key.
        divergent: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::PlanUnreadable { path, error } => {
                write!(f, "cannot read plan {}: {error}", path.display())
            }
            CampaignError::Plan { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            CampaignError::PlanChanged {
                dir,
                found,
                expected,
            } => write!(
                f,
                "{} was produced by a different plan (hash {found}, this plan is {expected}); \
                 use a fresh campaign directory",
                dir.display()
            ),
            CampaignError::CellConflict(conflict) => write!(f, "{conflict}"),
            CampaignError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            CampaignError::CellUnloadable { key, error } => {
                write!(f, "cell {key}: bundle does not load back: {error}")
            }
            CampaignError::DeterminismBreak {
                id,
                file,
                reference,
                divergent,
            } => write!(
                f,
                "cell identity {id}: {file} differs between instances {reference} and \
                 {divergent} — bundles must be byte-identical across jobs and repeats"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl CampaignError {
    /// The `repro` exit code this failure maps to: 2 for usage-shaped
    /// errors (bad plan, foreign directory), 1 for everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            CampaignError::PlanUnreadable { .. }
            | CampaignError::Plan { .. }
            | CampaignError::PlanChanged { .. }
            | CampaignError::CellConflict(_) => 2,
            _ => 1,
        }
    }
}

/// How one cell instance was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell was executed this invocation.
    Executed,
    /// The cell's bundle was already complete and was skipped.
    Skipped,
}

/// What one [`run_campaign`] invocation did.
#[derive(Debug)]
pub struct CampaignSummary {
    /// The campaign directory.
    pub dir: PathBuf,
    /// Plan name.
    pub name: String,
    /// Per-instance status, in plan cell order:
    /// `(key, status, degraded, peak_rss_kb)`. The peak RSS is the OS
    /// high-water mark sampled while the cell executed — volatile by
    /// nature, so it lives only here (the status report), never in the
    /// cell's bundle; `None` for skipped cells.
    pub cells: Vec<(String, CellStatus, bool, Option<u64>)>,
}

impl CampaignSummary {
    /// Number of cells executed this invocation.
    pub fn executed(&self) -> usize {
        self.cells
            .iter()
            .filter(|(_, s, _, _)| *s == CellStatus::Executed)
            .count()
    }

    /// Number of cells skipped as already complete.
    pub fn skipped(&self) -> usize {
        self.cells.len() - self.executed()
    }

    /// Number of degraded cells (fault losses survived the retry budget).
    pub fn degraded(&self) -> usize {
        self.cells.iter().filter(|(_, _, d, _)| *d).count()
    }

    /// The per-cell status lines plus the closing summary line, as printed
    /// on `repro campaign` stdout. Status and keys are deterministic — no
    /// timing, no paths beyond the campaign-relative cell keys; the peak-RSS
    /// column is the one volatile figure (it reports what this machine
    /// actually did, and a status report is exactly where volatile data
    /// belongs — never in the cells' committed bundles).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (key, status, degraded, peak_rss_kb) in &self.cells {
            let _ = writeln!(
                out,
                "cell {key}: {}{}{}",
                match status {
                    CellStatus::Executed => "executed",
                    CellStatus::Skipped => "skipped",
                },
                if *degraded { " (degraded)" } else { "" },
                peak_rss_kb.map_or(String::new(), |kb| format!(" [peak rss {kb} kB]"))
            );
        }
        let _ = writeln!(
            out,
            "campaign {}: {} cell(s) — {} executed, {} skipped, {} degraded",
            self.name,
            self.cells.len(),
            self.executed(),
            self.skipped(),
            self.degraded()
        );
        out
    }
}

/// The fault profile a plan fault variant names.
///
/// Presets resolve through `FaultProfile::from_str`; `uniform:R` through
/// `FaultProfile::uniform`. The plan parser already validated the spec, so
/// a `None` here means the plan schema's pinned catalog drifted from the
/// fault crate (pinned by a sync test below).
pub fn resolve_fault(spec: &str) -> Option<FaultProfile> {
    if let Some(rate) = uniform_fault_rate(spec) {
        return Some(FaultProfile::uniform(rate));
    }
    spec.parse().ok()
}

/// The defense mode a plan defense variant names.
pub fn resolve_defense(spec: &str) -> Option<DefenseMode> {
    match spec {
        "none" => Some(DefenseMode::None),
        "firewall" => Some(DefenseMode::Firewall),
        "text-only" => Some(DefenseMode::TextOnly),
        _ => None,
    }
}

/// The execution backend a plan backend variant names.
pub fn resolve_backend(spec: &str) -> Option<BackendChoice> {
    spec.parse().ok()
}

/// The default `process`-backend worker command: this executable re-invoked
/// with `--shard-worker`. Correct when the campaign runs inside `repro`;
/// other hosts (tests) pass an explicit command to [`run_campaign_with`].
pub fn default_worker_cmd() -> Vec<String> {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.to_str().map(str::to_string))
        .map(|exe| vec![exe, "--shard-worker".to_string()])
        .unwrap_or_default()
}

/// The default campaign directory for a plan: `campaigns/<name>` under the
/// current working directory.
pub fn default_campaign_dir(plan: &Plan) -> PathBuf {
    PathBuf::from("campaigns").join(&plan.name)
}

fn io_err(path: &Path, error: std::io::Error) -> CampaignError {
    CampaignError::Io {
        path: path.to_path_buf(),
        error: error.to_string(),
    }
}

/// The bundle-manifest identity spec of one cell. The digest is filled in
/// after execution; identity matching ignores it.
fn cell_spec(plan_hash: &str, coord: &CellCoord, fault: &FaultProfile, digest: u64) -> BundleSpec {
    BundleSpec {
        seed: coord.seed,
        fault_profile: fault.name().to_string(),
        defense: (coord.defense != "none").then(|| coord.defense.clone()),
        campaign: Some(CampaignCell {
            plan_hash: plan_hash.to_string(),
            cell: coord.id(),
        }),
        observations_digest: digest,
        coverage: None,
    }
}

/// Whether `dir` already holds this cell's complete bundle.
///
/// Complete means the whole bundle loads (`load_bundle`) *and* the manifest
/// records this plan's hash and this cell's identity. A partial bundle —
/// what a crash leaves behind, recognizable because the manifest is written
/// last and only bundle-named files are present — is re-executed; any other
/// non-empty directory is a conflict the runner refuses to overwrite.
fn cell_is_complete(dir: &Path, spec: &BundleSpec) -> Result<bool, CampaignError> {
    match check_run_dir(dir, spec) {
        Ok(RunDirState::Fresh) => Ok(false),
        Ok(RunDirState::Matching) => Ok(load_bundle(dir).is_ok()),
        Err(RunDirConflict::NotABundle { dir, detail }) => {
            if bundle_files_only(&dir) {
                Ok(false)
            } else {
                Err(CampaignError::CellConflict(RunDirConflict::NotABundle {
                    dir,
                    detail,
                }))
            }
        }
        Err(conflict) => Err(CampaignError::CellConflict(conflict)),
    }
}

/// Whether every entry of `dir` is one of the five bundle file names.
fn bundle_files_only(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    entries.flatten().all(|e| {
        e.file_name().to_str().is_some_and(|n| {
            [
                MANIFEST_FILE,
                METRICS_FILE,
                MEMORY_FILE,
                PROFILE_FILE,
                TRACE_FILE,
            ]
            .contains(&n)
        })
    })
}

/// Execute `plan_path` into `out_dir` (default [`default_campaign_dir`]),
/// resuming over any cells already complete there.
///
/// Campaign-level stages are recorded on `rec`; every executed cell gets
/// its own fresh recorder (installed globally for the duration of the
/// cell) so its bundle is untouched by campaign context or sibling cells.
pub fn run_campaign(
    plan_path: &Path,
    out_dir: Option<&Path>,
    rec: &Recorder,
) -> Result<CampaignSummary, CampaignError> {
    run_campaign_with(plan_path, out_dir, rec, &default_worker_cmd())
}

/// [`run_campaign`] with an explicit `process`-backend worker command
/// (needed by hosts whose own executable is not `repro`, e.g. test
/// binaries).
pub fn run_campaign_with(
    plan_path: &Path,
    out_dir: Option<&Path>,
    rec: &Recorder,
    worker_cmd: &[String],
) -> Result<CampaignSummary, CampaignError> {
    let plan = rec.stage("campaign.plan", || -> Result<Plan, CampaignError> {
        let src =
            std::fs::read_to_string(plan_path).map_err(|e| CampaignError::PlanUnreadable {
                path: plan_path.to_path_buf(),
                error: e.to_string(),
            })?;
        Plan::parse(&src).map_err(|error| CampaignError::Plan {
            path: plan_path.to_path_buf(),
            error,
        })
    })?;
    let plan_hash = plan.hash();
    let dir = out_dir.map_or_else(|| default_campaign_dir(&plan), Path::to_path_buf);

    // A campaign directory is bound to one plan: a previous invocation's
    // manifest must record the same hash, else every cell under it belongs
    // to a different experiment and resuming would mix matrices.
    let manifest_path = dir.join(CAMPAIGN_FILE);
    if let Ok(text) = std::fs::read_to_string(&manifest_path) {
        let found = Json::parse(text.trim_end())
            .ok()
            .and_then(|m| {
                m.get("plan_hash")
                    .and_then(Json::as_str)
                    .map(str::to_string)
            })
            .unwrap_or_else(|| "unreadable".to_string());
        if found != plan_hash {
            return Err(CampaignError::PlanChanged {
                dir,
                found,
                expected: plan_hash,
            });
        }
    }

    // Execute (or skip) every cell instance, in plan order.
    let coords = plan.cells();
    let statuses = rec.stage("campaign.cells", || {
        execute_cells(&plan, &plan_hash, &coords, &dir, plan_path, rec, worker_cmd)
    })?;

    // Load every cell back through the obsdiff loader: executed and skipped
    // cells take the same path, so nothing derived below can depend on
    // which invocation produced a bundle.
    let mut loaded: Vec<(CellCoord, LoadedBundle)> = Vec::with_capacity(coords.len());
    for coord in &coords {
        let cell_dir = dir.join(CELLS_DIR).join(coord.key());
        let bundle = load_bundle(&cell_dir).map_err(|e| CampaignError::CellUnloadable {
            key: coord.key(),
            error: e.to_string(),
        })?;
        loaded.push((coord.clone(), bundle));
    }

    // Byte-equality across instances of one identity (jobs × repeats).
    rec.stage("campaign.verify", || verify_instances(&dir, &coords))?;

    // Analysis tables, derived from one representative bundle per identity.
    rec.stage("campaign.tables", || -> Result<(), CampaignError> {
        let tables_dir = dir.join(TABLES_DIR);
        std::fs::create_dir_all(&tables_dir).map_err(|e| io_err(&tables_dir, e))?;
        for (name, jsonl, md) in derive_tables(&plan, &loaded) {
            let jsonl_path = tables_dir.join(format!("{name}.jsonl"));
            std::fs::write(&jsonl_path, jsonl).map_err(|e| io_err(&jsonl_path, e))?;
            let md_path = tables_dir.join(format!("{name}.md"));
            std::fs::write(&md_path, md).map_err(|e| io_err(&md_path, e))?;
        }
        Ok(())
    })?;

    // The campaign manifest is written last — its presence marks the
    // campaign complete — and is a pure function of plan + cell results.
    let records: Vec<CellRecord> = coords
        .iter()
        .zip(&loaded)
        .map(|(coord, (_, bundle))| CellRecord {
            coord: coord.clone(),
            digest: bundle.observations_digest().unwrap_or("").to_string(),
            degraded: bundle_degraded(bundle),
        })
        .collect();
    let mut manifest = campaign_manifest(&plan, &records).render();
    manifest.push('\n');
    std::fs::write(&manifest_path, manifest).map_err(|e| io_err(&manifest_path, e))?;

    let cells = coords
        .iter()
        .zip(&statuses)
        .zip(&records)
        .map(|((coord, (status, rss)), record)| (coord.key(), *status, record.degraded, *rss))
        .collect();
    Ok(CampaignSummary {
        dir,
        name: plan.name.clone(),
        cells,
    })
}

/// Execute or skip every cell of the matrix, in plan order. Each entry
/// pairs the status with the cell's OS peak RSS in kB (executed cells only).
#[allow(clippy::too_many_arguments)]
fn execute_cells(
    plan: &Plan,
    plan_hash: &str,
    coords: &[CellCoord],
    dir: &Path,
    plan_path: &Path,
    rec: &Recorder,
    worker_cmd: &[String],
) -> Result<Vec<(CellStatus, Option<u64>)>, CampaignError> {
    let mut statuses = Vec::with_capacity(coords.len());
    for (i, coord) in coords.iter().enumerate() {
        let key = coord.key();
        // The plan parser validated every variant; a failed resolution here
        // means the schema's pinned catalog drifted from the crates.
        let (Some(fault), Some(defense), Some(backend)) = (
            resolve_fault(&coord.fault),
            resolve_defense(&coord.defense),
            resolve_backend(&coord.backend),
        ) else {
            return Err(CampaignError::Plan {
                path: plan_path.to_path_buf(),
                error: PlanError::Field {
                    field: "faults/defenses/backends".into(),
                    problem: format!("variant of cell {key} resolves to no known profile"),
                },
            });
        };
        let cell_dir = dir.join(CELLS_DIR).join(&key);
        let spec = cell_spec(plan_hash, coord, &fault, 0);
        let mut log = rec.shard("cell", i, &key);
        if cell_is_complete(&cell_dir, &spec)? {
            log.add("cell.skipped", 1);
            rec.submit(log);
            statuses.push((CellStatus::Skipped, None));
            continue;
        }
        // One fresh recorder per cell, installed globally for the cell's
        // duration so leaf libraries feed it: the bundle must be a pure
        // function of the cell's coordinates, not of campaign context.
        let cell_rec = Arc::new(Recorder::new());
        install_global(cell_rec.clone());
        let config = match plan.scale {
            Scale::Paper => AuditConfig::paper(coord.seed),
            Scale::Small => AuditConfig::small(coord.seed),
        }
        .with_faults(fault.clone())
        .with_defense(defense)
        .with_jobs(Some(coord.jobs))
        .with_backend(backend)
        .with_worker_cmd(worker_cmd.to_vec());
        let obs = AuditRun::execute_with(config, &cell_rec);
        let mut spec = cell_spec(plan_hash, coord, &fault, obs.digest());
        spec.coverage = Some(obs.coverage.to_json());
        let report = cell_rec.report();
        write_bundle(&cell_dir, &spec, &report).map_err(|e| io_err(&cell_dir, e))?;
        // Surface the cell's OS peak RSS on the campaign's volatile channel
        // and in the summary — volatile data never enters the bundle.
        let peak_rss_kb = report.volatile.get("mem.peak_rss_kb").copied();
        if let Some(kb) = peak_rss_kb {
            rec.volatile_max("mem.peak_rss_kb", kb);
        }
        log.work(1);
        log.add("cell.executed", 1);
        rec.submit(log);
        statuses.push((CellStatus::Executed, peak_rss_kb));
    }
    Ok(statuses)
}

/// Whether a loaded bundle records a degraded run: fault losses survived
/// the retry budget or a shard's breaker opened.
fn bundle_degraded(bundle: &LoadedBundle) -> bool {
    let Some(cov) = bundle.coverage() else {
        return false;
    };
    let losses = cov.get("losses").and_then(Json::as_u64).unwrap_or(0);
    let degraded_shards = cov
        .get("degraded_shards")
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    losses > 0 || degraded_shards > 0
}

/// Assert byte-equality of every bundle file across all instances of each
/// cell identity. The first instance in plan order is the reference.
fn verify_instances(dir: &Path, coords: &[CellCoord]) -> Result<(), CampaignError> {
    let mut groups: BTreeMap<String, Vec<&CellCoord>> = BTreeMap::new();
    for coord in coords {
        groups.entry(coord.id()).or_default().push(coord);
    }
    for (id, instances) in groups {
        let Some((reference, rest)) = instances.split_first() else {
            continue;
        };
        let ref_dir = dir.join(CELLS_DIR).join(reference.key());
        for other in rest {
            let other_dir = dir.join(CELLS_DIR).join(other.key());
            for file in [
                METRICS_FILE,
                TRACE_FILE,
                MEMORY_FILE,
                PROFILE_FILE,
                MANIFEST_FILE,
            ] {
                let a = std::fs::read(ref_dir.join(file)).map_err(|e| io_err(&ref_dir, e))?;
                let b = std::fs::read(other_dir.join(file)).map_err(|e| io_err(&other_dir, e))?;
                if a != b {
                    return Err(CampaignError::DeterminismBreak {
                        id,
                        file: file.to_string(),
                        reference: reference.key(),
                        divergent: other.key(),
                    });
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Analysis tables
// ---------------------------------------------------------------------------

/// A metrics counter total of a loaded bundle (0 when absent).
fn counter(bundle: &LoadedBundle, name: &str) -> u64 {
    bundle
        .metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Percentage `part / whole`, `None` for an empty denominator.
fn pct(part: u64, whole: u64) -> Option<f64> {
    (whole > 0).then(|| part as f64 * 100.0 / whole as f64)
}

fn pct_json(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Float)
}

fn pct_md(v: Option<f64>) -> String {
    v.map_or_else(|| "—".to_string(), |p| format!("{p:.1}"))
}

/// One representative bundle per cell identity, in plan order.
///
/// Instances of one identity are byte-identical (asserted by
/// [`verify_instances`] before tables are derived), so the first instance
/// speaks for all of them and the tables are independent of the plan's
/// `jobs` and `repeats` axes.
fn representatives(loaded: &[(CellCoord, LoadedBundle)]) -> Vec<(&CellCoord, &LoadedBundle)> {
    let mut seen: Vec<String> = Vec::new();
    let mut out = Vec::new();
    for (coord, bundle) in loaded {
        let id = coord.id();
        if !seen.contains(&id) {
            seen.push(id);
            out.push((coord, bundle));
        }
    }
    out
}

/// Derive every table: `(name, jsonl body, markdown body)` in [`TABLES`]
/// order. Pure function of the loaded bundles — no clocks, no paths.
fn derive_tables(
    plan: &Plan,
    loaded: &[(CellCoord, LoadedBundle)],
) -> Vec<(&'static str, String, String)> {
    let reps = representatives(loaded);
    vec![
        ("bids_by_fault", bids_jsonl(&reps), bids_md(&reps)),
        (
            "coverage_by_fault",
            coverage_jsonl(&reps),
            coverage_md(&reps),
        ),
        (
            "defense_efficacy",
            defense_jsonl(plan, &reps),
            defense_md(plan, &reps),
        ),
    ]
}

/// The fault-free identity at `(seed, defense)`, if the plan includes one.
fn baseline_for<'a>(
    reps: &[(&CellCoord, &'a LoadedBundle)],
    seed: u64,
    defense: &str,
) -> Option<&'a LoadedBundle> {
    reps.iter()
        .find(|(c, _)| c.seed == seed && c.fault == "none" && c.defense == defense)
        .map(|(_, b)| *b)
}

/// The undefended identity at `(seed, fault)`, if the plan includes one.
fn undefended_for<'a>(
    reps: &[(&CellCoord, &'a LoadedBundle)],
    seed: u64,
    fault: &str,
) -> Option<&'a LoadedBundle> {
    reps.iter()
        .find(|(c, _)| c.seed == seed && c.fault == fault && c.defense == "none")
        .map(|(_, b)| *b)
}

/// Rows of the `bids_by_fault` table: observation volume per identity, with
/// bid retention relative to the same `(seed, defense)`'s fault-free cell.
fn bids_rows(reps: &[(&CellCoord, &LoadedBundle)]) -> Vec<(CellCoord, [u64; 5], Option<f64>)> {
    reps.iter()
        .map(|(coord, bundle)| {
            let counts = [
                counter(bundle, "crawl.visits"),
                counter(bundle, "crawl.bids"),
                counter(bundle, "crawl.creatives"),
                counter(bundle, "crawl.syncs"),
                counter(bundle, "tap.flows"),
            ];
            let retention = baseline_for(reps, coord.seed, &coord.defense)
                .and_then(|base| pct(counts[1], counter(base, "crawl.bids")));
            ((*coord).clone(), counts, retention)
        })
        .collect()
}

fn bids_jsonl(reps: &[(&CellCoord, &LoadedBundle)]) -> String {
    let mut out = String::new();
    for (coord, counts, retention) in bids_rows(reps) {
        let row = Json::Obj(vec![
            ("fault".into(), Json::Str(coord.fault.clone())),
            ("seed".into(), Json::Int(coord.seed)),
            ("defense".into(), Json::Str(coord.defense.clone())),
            ("visits".into(), Json::Int(counts[0])),
            ("bids".into(), Json::Int(counts[1])),
            ("creatives".into(), Json::Int(counts[2])),
            ("syncs".into(), Json::Int(counts[3])),
            ("flows".into(), Json::Int(counts[4])),
            ("bid_retention_pct".into(), pct_json(retention)),
        ]);
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

fn bids_md(reps: &[(&CellCoord, &LoadedBundle)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "# Observation volume by fault variant\n\n\
         Bid retention compares each cell's captured bids against the same\n\
         seed's fault-free cell at the same defense (100% = nothing lost).\n\n\
         | fault | seed | defense | visits | bids | creatives | syncs | flows | bid retention % |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for (coord, counts, retention) in bids_rows(reps) {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            coord.fault,
            coord.seed,
            coord.defense,
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            pct_md(retention)
        );
    }
    out
}

/// One row of the `coverage_by_fault` table.
struct CoverageRow {
    coord: CellCoord,
    section: String,
    observed: u64,
    expected: u64,
    injected: u64,
    retries: u64,
    losses: u64,
    degraded: bool,
}

/// Rows of the `coverage_by_fault` table: one row per (identity, coverage
/// section) plus an `overall` row per identity. Injected/retries/losses
/// are per cell, repeated on every row for self-contained JSONL lines.
fn coverage_rows(reps: &[(&CellCoord, &LoadedBundle)]) -> Vec<CoverageRow> {
    let mut rows = Vec::new();
    for (coord, bundle) in reps {
        let Some(cov) = bundle.coverage() else {
            continue;
        };
        let injected = cov
            .get("injected")
            .and_then(Json::as_obj)
            .map_or(0, |channels| {
                channels.iter().filter_map(|(_, v)| v.as_u64()).sum::<u64>()
            });
        let retries = cov.get("retries").and_then(Json::as_u64).unwrap_or(0);
        let losses = cov.get("losses").and_then(Json::as_u64).unwrap_or(0);
        let degraded = bundle_degraded(bundle);
        let sections = cov
            .get("sections")
            .and_then(Json::as_obj)
            .unwrap_or_default();
        let (mut total_obs, mut total_exp) = (0, 0);
        for (name, section) in sections {
            let observed = section.get("observed").and_then(Json::as_u64).unwrap_or(0);
            let expected = section.get("expected").and_then(Json::as_u64).unwrap_or(0);
            total_obs += observed;
            total_exp += expected;
            rows.push(CoverageRow {
                coord: (*coord).clone(),
                section: name.clone(),
                observed,
                expected,
                injected,
                retries,
                losses,
                degraded,
            });
        }
        rows.push(CoverageRow {
            coord: (*coord).clone(),
            section: "overall".to_string(),
            observed: total_obs,
            expected: total_exp,
            injected,
            retries,
            losses,
            degraded,
        });
    }
    rows
}

fn coverage_jsonl(reps: &[(&CellCoord, &LoadedBundle)]) -> String {
    let mut out = String::new();
    for row in coverage_rows(reps) {
        let doc = Json::Obj(vec![
            ("fault".into(), Json::Str(row.coord.fault.clone())),
            ("seed".into(), Json::Int(row.coord.seed)),
            ("defense".into(), Json::Str(row.coord.defense.clone())),
            ("section".into(), Json::Str(row.section)),
            ("observed".into(), Json::Int(row.observed)),
            ("expected".into(), Json::Int(row.expected)),
            (
                "coverage_pct".into(),
                pct_json(pct(row.observed, row.expected)),
            ),
            ("injected".into(), Json::Int(row.injected)),
            ("retries".into(), Json::Int(row.retries)),
            ("losses".into(), Json::Int(row.losses)),
            ("degraded".into(), Json::Bool(row.degraded)),
        ]);
        out.push_str(&doc.render());
        out.push('\n');
    }
    out
}

fn coverage_md(reps: &[(&CellCoord, &LoadedBundle)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "# Coverage by fault variant\n\n\
         Observed vs expected observations per pipeline section; `overall`\n\
         sums the sections. Injected, retries and losses are per cell, not\n\
         per section.\n\n\
         | fault | seed | defense | section | observed | expected | coverage % | injected | retries | losses | degraded |\n\
         |---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for row in coverage_rows(reps) {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            row.coord.fault,
            row.coord.seed,
            row.coord.defense,
            row.section,
            row.observed,
            row.expected,
            pct_md(pct(row.observed, row.expected)),
            row.injected,
            row.retries,
            row.losses,
            row.degraded
        );
    }
    out
}

/// Rows of the `defense_efficacy` table: per defended identity, the
/// reduction in tracking-relevant observation volume against the
/// undefended cell at the same `(seed, fault)`.
fn defense_rows(
    plan: &Plan,
    reps: &[(&CellCoord, &LoadedBundle)],
) -> Vec<(CellCoord, [u64; 3], [Option<f64>; 3])> {
    if plan.defenses.iter().all(|d| d == "none") {
        return Vec::new();
    }
    reps.iter()
        .filter(|(c, _)| c.defense != "none")
        .map(|(coord, bundle)| {
            let names = ["tap.flows", "tap.bytes", "crawl.bids"];
            let counts = [
                counter(bundle, names[0]),
                counter(bundle, names[1]),
                counter(bundle, names[2]),
            ];
            let mut reductions = [None; 3];
            if let Some(base) = undefended_for(reps, coord.seed, &coord.fault) {
                for (i, name) in names.iter().enumerate() {
                    let baseline = counter(base, name);
                    reductions[i] = pct(baseline.saturating_sub(counts[i]), baseline);
                }
            }
            ((*coord).clone(), counts, reductions)
        })
        .collect()
}

fn defense_jsonl(plan: &Plan, reps: &[(&CellCoord, &LoadedBundle)]) -> String {
    let mut out = String::new();
    for (coord, counts, reductions) in defense_rows(plan, reps) {
        let row = Json::Obj(vec![
            ("defense".into(), Json::Str(coord.defense.clone())),
            ("seed".into(), Json::Int(coord.seed)),
            ("fault".into(), Json::Str(coord.fault.clone())),
            ("flows".into(), Json::Int(counts[0])),
            ("bytes".into(), Json::Int(counts[1])),
            ("bids".into(), Json::Int(counts[2])),
            ("flow_reduction_pct".into(), pct_json(reductions[0])),
            ("byte_reduction_pct".into(), pct_json(reductions[1])),
            ("bid_reduction_pct".into(), pct_json(reductions[2])),
        ]);
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

fn defense_md(plan: &Plan, reps: &[(&CellCoord, &LoadedBundle)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "# Defense efficacy\n\n\
         Reduction of tracking-relevant observation volume per defended\n\
         cell, relative to the undefended cell at the same (seed, fault).\n\n\
         | defense | seed | fault | flows | bytes | bids | flow reduction % | byte reduction % | bid reduction % |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for (coord, counts, reductions) in defense_rows(plan, reps) {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            coord.defense,
            coord.seed,
            coord.fault,
            counts[0],
            counts[1],
            counts[2],
            pct_md(reductions[0]),
            pct_md(reductions[1]),
            pct_md(reductions[2])
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexa_obs::campaign::{BACKENDS, DEFENSE_MODES, FAULT_PRESETS};

    #[test]
    fn plan_fault_catalog_matches_fault_crate() {
        // The plan schema pins the preset names (obs sits below the fault
        // crate); every pinned name must resolve, and the uniform spec must
        // produce the uniform profile.
        for preset in FAULT_PRESETS {
            let profile = resolve_fault(preset).expect("preset resolves");
            assert_eq!(profile.name(), *preset);
        }
        let uniform = resolve_fault("uniform:0.25").expect("uniform resolves");
        assert_eq!(uniform.name(), "uniform(0.25)");
        assert!(resolve_fault("chaotic").is_none());
    }

    #[test]
    fn plan_defense_catalog_matches_audit_crate() {
        for mode in DEFENSE_MODES {
            assert!(resolve_defense(mode).is_some(), "{mode} must resolve");
        }
        assert_eq!(resolve_defense("none"), Some(DefenseMode::None));
        assert_eq!(resolve_defense("firewall"), Some(DefenseMode::Firewall));
        assert_eq!(resolve_defense("text-only"), Some(DefenseMode::TextOnly));
        assert!(resolve_defense("tinfoil").is_none());
    }

    #[test]
    fn plan_backend_catalog_matches_exec_crate() {
        // The plan schema pins the backend names (obs sits below the exec
        // crate); every pinned name must resolve and round-trip its label.
        for name in BACKENDS {
            let backend = resolve_backend(name).expect("backend resolves");
            assert_eq!(backend.label(), *name);
        }
        assert_eq!(BACKENDS.len(), BackendChoice::ALL.len());
        assert!(resolve_backend("quantum").is_none());
    }

    #[test]
    fn percentage_helpers_handle_empty_denominators() {
        assert_eq!(pct(1, 0), None);
        assert_eq!(pct(1, 2), Some(50.0));
        assert_eq!(pct_md(None), "—");
        assert_eq!(pct_md(Some(33.333)), "33.3");
        assert_eq!(pct_json(None), Json::Null);
    }

    #[test]
    fn campaign_errors_map_to_exit_codes() {
        let usage = CampaignError::Plan {
            path: PathBuf::from("p.json"),
            error: PlanError::SchemaMismatch { found: 9 },
        };
        assert_eq!(usage.exit_code(), 2);
        let violation = CampaignError::DeterminismBreak {
            id: "s7-fnone-dnone".into(),
            file: METRICS_FILE.into(),
            reference: "s7-fnone-dnone-j1-r0".into(),
            divergent: "s7-fnone-dnone-j4-r0".into(),
        };
        assert_eq!(violation.exit_code(), 1);
        assert!(violation.to_string().contains("byte-identical"));
    }
}
