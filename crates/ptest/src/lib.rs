//! Minimal, fully offline property-testing harness with a `proptest`-shaped
//! surface.
//!
//! The workspace's property tests were written against the crates.io
//! `proptest` crate; this package provides the subset of that API they use so
//! the suite builds and runs without network access. It is aliased to the
//! `proptest` dependency name in the workspace manifest.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for numeric
//!   ranges, `&str` regex-lite patterns (`[class]{lo,hi}` sequences), tuples
//!   up to arity 5, and the combinators in [`prop`]
//!   (`collection::vec`, `collection::hash_set`, `sample::select`,
//!   `bool::ANY`).
//!
//! Unlike real proptest there is no shrinking: failures report the panic from
//! the failing case directly. Generation is deterministic per test name, so a
//! red test stays red until the code changes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving generation (re-exported for the macro's use).
pub type TestRng = StdRng;

/// Deterministic per-test generator: seeded from the test's name.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// `&str` strategies interpret the string as a regex-lite pattern: a sequence
/// of literal characters and `[class]` groups, each optionally followed by a
/// `{lo,hi}` repetition. Classes support literal characters and `a-z` ranges.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                + i;
            let class = expand_class(&chars[i + 1..close], pattern);
            i = close + 1;
            class
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {lo,hi} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repeat lower bound"),
                    hi.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(!class.is_empty(), "empty character class in {pattern:?}");
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            out.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Built-in strategy constructors, mirroring proptest's `prop` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.gen_range(self.size.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `HashSet<S::Value>` targeting a size drawn from
        /// `size` (fewer elements are possible when the element space is
        /// small, matching proptest's behaviour).
        pub fn hash_set<S>(element: S, size: core::ops::Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: std::hash::Hash + Eq,
        {
            HashSetStrategy { element, size }
        }

        /// See [`hash_set`].
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: std::hash::Hash + Eq,
        {
            type Value = std::collections::HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = rng.gen_range(self.size.clone());
                let mut out = std::collections::HashSet::with_capacity(target);
                // Bounded attempts: tiny element domains can't fill `target`.
                for _ in 0..target.saturating_mul(20).max(20) {
                    if out.len() >= target {
                        break;
                    }
                    out.insert(self.element.generate(rng));
                }
                out
            }
        }
    }

    /// Sampling from explicit value sets.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy drawing uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty options");
            Select { options }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy value.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Assert inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..) { .. }`
/// becomes a standard test running `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let __case: u32 = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn patterns_generate_within_spec() {
        let mut rng = super::test_rng("patterns");
        for _ in 0..200 {
            let s = super::Strategy::generate(&"[a-z][a-z0-9]{0,10}", &mut rng);
            assert!((1..=11).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let p = super::Strategy::generate(&"[ -~]{0,24}", &mut rng);
            assert!(p.len() <= 24);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = super::test_rng("x");
        let mut b = super::test_rng("x");
        let strat = prop::collection::vec(0u64..100, 1..10);
        for _ in 0..20 {
            assert_eq!(
                super::Strategy::generate(&strat, &mut a),
                super::Strategy::generate(&strat, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_arguments(x in 0u32..50, pair in (0usize..4, "[a-z]{1,3}")) {
            prop_assert!(x < 50);
            prop_assert!(pair.0 < 4);
            prop_assert!((1..=3).contains(&pair.1.len()));
        }

        #[test]
        fn prop_map_and_select_compose(
            name in (prop::collection::vec("[a-z]{1,4}", 1..4), prop::sample::select(vec!["com", "net"]))
                .prop_map(|(labels, tld)| format!("{}.{}", labels.join("."), tld)),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(name.ends_with(".com") || name.ends_with(".net"));
            let _ = flag;
        }
    }
}
