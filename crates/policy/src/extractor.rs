//! Flow extraction: captures → `<data type, entity>` tuples.
//!
//! PoliCheck consumes data flows. Because of the two-vantage-point setup the
//! paper extracts the two tuple halves from *different* captures (§7.2):
//! entities from the Amazon Echo's encrypted traffic (endpoints are visible,
//! payloads are not) and data types from the AVS Echo's plaintext traffic
//! (payloads visible, but endpoints Amazon-only).

use alexa_net::{Capture, DataType, OrgMap};
use std::collections::{BTreeMap, BTreeSet};

/// One extracted data flow for a skill.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DataFlow {
    /// Skill the flow is attributed to (capture label).
    pub skill: String,
    /// Receiving organization.
    pub entity: String,
    /// Data type, when observable (plaintext captures only).
    pub data_type: Option<DataType>,
}

/// Extracts flows from capture sets.
#[derive(Debug, Default)]
pub struct FlowExtractor;

impl FlowExtractor {
    /// Create an extractor.
    pub fn new() -> FlowExtractor {
        FlowExtractor
    }

    /// Endpoint analysis input: per skill (capture label), the set of
    /// organizations whose endpoints were contacted. Works on encrypted
    /// captures — only `remote` is consulted.
    ///
    /// Unknown organizations fall back to the endpoint's registrable domain,
    /// mirroring the paper's WHOIS fallback.
    pub fn endpoint_orgs(
        &self,
        captures: &[Capture],
        orgs: &OrgMap,
    ) -> BTreeMap<String, BTreeSet<String>> {
        let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for cap in captures {
            let entry = out.entry(cap.label.clone()).or_default();
            for packet in &cap.packets {
                let org = orgs
                    .org_of(&packet.remote)
                    .map(str::to_string)
                    .or_else(|| packet.remote.registrable().map(|d| d.as_str().to_string()))
                    .unwrap_or_else(|| packet.remote.as_str().to_string());
                entry.insert(org);
            }
        }
        out
    }

    /// Data-type analysis input: per skill, the set of data types observed
    /// in plaintext payloads. Encrypted packets contribute nothing.
    pub fn data_types(&self, captures: &[Capture]) -> BTreeMap<String, BTreeSet<DataType>> {
        let mut out: BTreeMap<String, BTreeSet<DataType>> = BTreeMap::new();
        for cap in captures {
            let entry = out.entry(cap.label.clone()).or_default();
            for packet in &cap.packets {
                if let Some(records) = packet.payload.records() {
                    for r in records {
                        entry.insert(r.data_type);
                    }
                }
            }
        }
        out
    }

    /// Full tuples from plaintext captures: `<data type, entity>` per skill.
    pub fn full_flows(&self, captures: &[Capture], orgs: &OrgMap) -> Vec<DataFlow> {
        let mut flows = BTreeSet::new();
        for cap in captures {
            for packet in &cap.packets {
                if let Some(records) = packet.payload.records() {
                    let org = orgs
                        .org_of(&packet.remote)
                        .map(str::to_string)
                        .unwrap_or_else(|| packet.remote.as_str().to_string());
                    for r in records {
                        flows.insert(DataFlow {
                            skill: cap.label.clone(),
                            entity: org.clone(),
                            data_type: Some(r.data_type),
                        });
                    }
                }
            }
        }
        flows.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexa_net::{Domain, Packet, Payload, Record};
    use std::net::Ipv4Addr;

    fn cap(label: &str, packets: Vec<Packet>) -> Capture {
        let mut c = Capture::new(label);
        c.packets = packets;
        c
    }

    fn plain(name: &str, dt: DataType) -> Packet {
        Packet::outgoing(
            1,
            Domain::parse(name).unwrap(),
            Ipv4Addr::new(10, 0, 0, 1),
            Payload::Plain(vec![Record::new(dt, "v")]),
        )
    }

    fn encrypted(name: &str) -> Packet {
        Packet::outgoing(
            1,
            Domain::parse(name).unwrap(),
            Ipv4Addr::new(10, 0, 0, 1),
            Payload::Encrypted { len: 100 },
        )
    }

    #[test]
    fn endpoint_orgs_resolve_through_orgmap() {
        let orgs = OrgMap::new();
        let captures = vec![cap(
            "garmin",
            vec![encrypted("api.amazon.com"), encrypted("dts.podtrac.com")],
        )];
        let map = FlowExtractor::new().endpoint_orgs(&captures, &orgs);
        let set = &map["garmin"];
        assert!(set.contains("Amazon Technologies, Inc."));
        assert!(set.contains("Podtrac Inc"));
    }

    #[test]
    fn unknown_org_falls_back_to_registrable() {
        let orgs = OrgMap::new();
        let captures = vec![cap("x", vec![encrypted("cdn.obscure-host.net")])];
        let map = FlowExtractor::new().endpoint_orgs(&captures, &orgs);
        assert!(map["x"].contains("obscure-host.net"));
    }

    #[test]
    fn data_types_only_from_plaintext() {
        let captures = vec![cap(
            "s",
            vec![
                plain("api.amazon.com", DataType::VoiceRecording),
                encrypted("api.amazon.com"),
            ],
        )];
        let map = FlowExtractor::new().data_types(&captures);
        assert_eq!(map["s"].len(), 1);
        assert!(map["s"].contains(&DataType::VoiceRecording));
    }

    #[test]
    fn encrypted_only_captures_yield_no_data_types() {
        let captures = vec![cap("s", vec![encrypted("api.amazon.com")])];
        let map = FlowExtractor::new().data_types(&captures);
        assert!(map["s"].is_empty());
    }

    #[test]
    fn full_flows_pair_type_and_entity() {
        let orgs = OrgMap::new();
        let captures = vec![cap(
            "sonos",
            vec![plain("avs-alexa-na.amazon.com", DataType::VoiceRecording)],
        )];
        let flows = FlowExtractor::new().full_flows(&captures, &orgs);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].entity, "Amazon Technologies, Inc.");
        assert_eq!(flows[0].data_type, Some(DataType::VoiceRecording));
    }

    #[test]
    fn flows_deduplicate() {
        let orgs = OrgMap::new();
        let captures = vec![cap(
            "s",
            vec![
                plain("api.amazon.com", DataType::CustomerId),
                plain("api.amazon.com", DataType::CustomerId),
            ],
        )];
        assert_eq!(FlowExtractor::new().full_flows(&captures, &orgs).len(), 1);
    }
}
