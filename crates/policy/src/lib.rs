//! Privacy-policy analysis: generator, ontologies and the PoliCheck
//! reimplementation.
//!
//! §7 of the paper adapts **PoliCheck** (Andow et al., USENIX Security '20)
//! to check whether the data flows observed in network traffic are disclosed
//! in skills' privacy policies. Two adapted variants exist because of the
//! two-vantage-point capture setup:
//!
//! * **endpoint analysis** (§7.2.1) — entities only, from the *encrypted*
//!   Amazon Echo traffic: is the contacted organization named (clear),
//!   referred to by category / "third party" (vague), or absent (omitted)?
//! * **data-type analysis** (§7.2.2) — data types only, from the *plaintext*
//!   AVS Echo traffic: is the collected data type disclosed with an exact
//!   term, a hypernym, or not at all?
//!
//! Because the real marketplace's policy documents are unavailable, the
//! [`generator`] renders realistic English policy text from each skill's
//! planted [`alexa_platform::PolicySpec`]; the analyzer sees **only the
//! text**, and [`validate`] measures recovery against the spec exactly like
//! the paper's §7.2.3 validation (micro/macro P/R/F1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod document;
pub mod extractor;
pub mod fetcher;
pub mod generator;
pub mod ontology;
pub mod policheck;
pub mod validate;

pub use document::PolicyDoc;
pub use extractor::{DataFlow, FlowExtractor};
pub use fetcher::{FetchError, PolicyFetcher};
pub use generator::PolicyGenerator;
pub use ontology::{DataOntology, EntityOntology, OntologyCategory};
pub use policheck::{DisclosureClass, PoliCheck};
pub use validate::validate_against_ground_truth;
