//! Validation of the PoliCheck reimplementation against planted ground
//! truth — the reproduction of §7.2.3.
//!
//! The paper visually inspected the flows of 100 skills and compared the
//! manual labels with PoliCheck's output as a multi-class classification,
//! reporting 87.41% micro-averaged P/R/F1 and 93.96 / 77.85 / 85.15%
//! macro-averaged. Here the ground truth is each skill's [`PolicySpec`]
//! (what the generator was told to express); the prediction is what
//! PoliCheck recovers from the rendered text. The generator's deliberate
//! off-lexicon quirks keep the agreement below 100%.

use crate::generator::PolicyGenerator;
use crate::policheck::{DisclosureClass, PoliCheck};
use alexa_platform::{DisclosureLevel, Skill};
use alexa_stats::ConfusionMatrix;

fn level_label(level: DisclosureLevel) -> &'static str {
    match level {
        DisclosureLevel::Clear => "clear",
        DisclosureLevel::Vague => "vague",
        // Ground-truth denials correspond to PoliCheck's "incorrect" class.
        DisclosureLevel::Denied => "incorrect",
        DisclosureLevel::Omitted => "omitted",
    }
}

fn class_label(class: DisclosureClass) -> &'static str {
    match class {
        DisclosureClass::Clear => "clear",
        DisclosureClass::Vague => "vague",
        DisclosureClass::Incorrect => "incorrect",
        DisclosureClass::Omitted => "omitted",
        DisclosureClass::NoPolicy => "no policy",
    }
}

/// Run PoliCheck over `skills` (typically a 100-skill sample with policies,
/// like the paper's validation set) and score its classifications against
/// the planted ground truth. Returns the filled confusion matrix.
pub fn validate_against_ground_truth(skills: &[&Skill]) -> ConfusionMatrix {
    let generator = PolicyGenerator::new();
    let policheck = PoliCheck::new();
    let mut matrix = ConfusionMatrix::new();

    for skill in skills {
        let doc = generator.render(skill);
        for (&dt, &truth) in &skill.policy.data_disclosures {
            let predicted = policheck.classify_data_type(doc.as_ref(), dt);
            matrix.record(level_label(truth), class_label(predicted));
        }
        for (org, &truth) in &skill.policy.endpoint_disclosures {
            let predicted = policheck.classify_endpoint(doc.as_ref(), org);
            matrix.record(level_label(truth), class_label(predicted));
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexa_platform::Marketplace;

    #[test]
    fn validation_on_100_skill_sample_is_strong_but_imperfect() {
        let market = Marketplace::generate(42);
        let sample: Vec<&Skill> = market
            .all()
            .iter()
            .filter(|s| s.policy.has_document())
            .take(100)
            .collect();
        assert_eq!(sample.len(), 100);
        let matrix = validate_against_ground_truth(&sample);
        assert!(
            matrix.total() > 100,
            "too few labeled flows: {}",
            matrix.total()
        );
        let micro = matrix.micro_scores();
        // The paper reports 87.41% micro F1; ours should be in the same
        // regime — high but below 1.0 thanks to the generator's quirks.
        assert!(micro.f1 > 0.80, "micro F1 {}", micro.f1);
        assert!(micro.f1 < 1.0, "suspiciously perfect micro F1");
        let macro_s = matrix.macro_scores();
        assert!(macro_s.precision > 0.7, "macro P {}", macro_s.precision);
        assert!(macro_s.recall > 0.6, "macro R {}", macro_s.recall);
    }

    #[test]
    fn validation_errors_skew_toward_omitted() {
        // The planted quirks are off-lexicon phrasings, which PoliCheck can
        // only misread as "omitted" — verify that's the dominant error mode.
        let market = Marketplace::generate(42);
        let sample: Vec<&Skill> = market
            .all()
            .iter()
            .filter(|s| s.policy.has_document())
            .collect();
        let matrix = validate_against_ground_truth(&sample);
        let (_, fp_clear, _) = matrix.class_counts("clear");
        assert_eq!(fp_clear, 0, "nothing should be over-claimed as clear");
    }
}
