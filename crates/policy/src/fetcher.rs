//! Policy download with injected faults and per-document retry.
//!
//! The paper reports that 4 of the policy pages it tried to fetch from the
//! marketplace failed outright (§7.2). [`PolicyFetcher`] models that layer:
//! it wraps [`PolicyGenerator`] behind a "download" that can time out on
//! the fault plane's [`FaultChannel::PolicyDownload`] channel and is
//! retried under the standard backoff schedule. Each document is one unit
//! of work (the policy stage shards per skill), so each fetch carries its
//! own small retry budget.

use crate::document::PolicyDoc;
use crate::generator::PolicyGenerator;
use alexa_fault::{retry, FaultChannel, FaultPlane, RetryBudget, RetryOutcome, RetryPolicy};
use alexa_platform::Skill;

/// Why a policy fetch ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// Every attempt timed out (injected fault survived retry).
    Timeout {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Timeout { attempts } => {
                write!(f, "policy download timed out after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for FetchError {}

/// Downloads (renders) policy documents through the fault plane.
#[derive(Debug)]
pub struct PolicyFetcher {
    generator: PolicyGenerator,
    plane: FaultPlane,
    policy: RetryPolicy,
    seed: u64,
}

impl PolicyFetcher {
    /// A fetcher over the standard generator and retry schedule.
    pub fn new(seed: u64, plane: FaultPlane) -> PolicyFetcher {
        PolicyFetcher {
            generator: PolicyGenerator::new(),
            plane,
            policy: RetryPolicy::standard(),
            seed,
        }
    }

    /// Fetch one skill's policy document.
    ///
    /// `Ok(None)` is the modeled world's answer (no link / dead link) and is
    /// *not* a fault; `Err` means injected download faults survived the
    /// per-document retry budget. The outcome carries retry accounting for
    /// the caller's ledger.
    pub fn fetch(&self, skill: &Skill) -> RetryOutcome<Option<PolicyDoc>, FetchError> {
        if !self.plane.is_active() {
            return RetryOutcome {
                result: Ok(self.generator.render(skill)),
                attempts: 1,
                retries: 0,
                backoff_ms: 0,
                budget_denied: false,
            };
        }
        let mut budget = RetryBudget::new(self.policy.max_attempts.max(1) - 1);
        let key = format!("policy/{}", skill.id.0);
        let mut out = retry(
            &self.policy,
            &mut budget,
            self.seed,
            &key,
            |attempt| {
                if self
                    .plane
                    .fires(FaultChannel::PolicyDownload, &format!("{key}#{attempt}"))
                {
                    Err(FetchError::Timeout { attempts: attempt })
                } else {
                    Ok(self.generator.render(skill))
                }
            },
            |_| true,
        );
        if let Err(FetchError::Timeout { attempts }) = &mut out.result {
            *attempts = out.attempts;
        }
        out
    }

    /// Amazon's own privacy notice (never faulted: the paper always had it).
    pub fn amazon_policy(&self) -> PolicyDoc {
        self.generator.amazon_policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexa_fault::FaultProfile;
    use alexa_platform::{PolicySpec, SkillCategory, SkillId};

    fn skill(id: &str) -> Skill {
        Skill {
            id: SkillId(id.into()),
            name: "Fetch Test".into(),
            vendor: "Vendor".into(),
            category: SkillCategory::Dating,
            invocation: "fetch test".into(),
            sample_utterances: vec![],
            reviews: 1,
            streaming: false,
            fails_to_load: false,
            requires_account_linking: false,
            permissions: vec![],
            backends: vec![],
            collects: vec![],
            policy: PolicySpec {
                has_link: true,
                retrievable: true,
                ..PolicySpec::none()
            },
        }
    }

    #[test]
    fn inactive_plane_matches_generator_exactly() {
        let fetcher = PolicyFetcher::new(7, FaultPlane::disabled());
        let s = skill("s1");
        let out = fetcher.fetch(&s);
        assert_eq!(out.result, Ok(PolicyGenerator::new().render(&s)));
        assert_eq!((out.attempts, out.retries, out.backoff_ms), (1, 0, 0));
    }

    #[test]
    fn full_fault_rate_times_out_every_fetch() {
        let fetcher = PolicyFetcher::new(7, FaultPlane::new(7, FaultProfile::uniform(1.0)));
        let out = fetcher.fetch(&skill("s2"));
        match out.result {
            Err(FetchError::Timeout { attempts }) => {
                assert_eq!(attempts, RetryPolicy::standard().max_attempts)
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(out.backoff_ms > 0, "virtual backoff must accumulate");
    }

    #[test]
    fn hostile_plane_is_deterministic_and_partial() {
        let fetcher = PolicyFetcher::new(1234, FaultPlane::new(1234, FaultProfile::hostile()));
        let verdicts: Vec<bool> = (0..60)
            .map(|i| fetcher.fetch(&skill(&format!("s{i}"))).succeeded())
            .collect();
        let again: Vec<bool> = (0..60)
            .map(|i| fetcher.fetch(&skill(&format!("s{i}"))).succeeded())
            .collect();
        assert_eq!(verdicts, again);
        assert!(verdicts.iter().any(|&v| v), "some fetches must survive");
        assert!(verdicts.iter().any(|&v| !v), "some fetches must fail");
    }
}
