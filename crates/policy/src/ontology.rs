//! Entity and data ontologies.
//!
//! PoliCheck's consistency model matches traffic-derived tuples against
//! policy statements **through ontologies**: a statement that discloses
//! sharing with "analytics providers" vaguely covers any endpoint whose
//! organization is an *analytic provider*; a statement disclosing collection
//! of "device information" vaguely covers the *timezone* data type; and so
//! on. The paper rebuilt both ontologies for the smart-speaker domain
//! (§7.2.2 adds `voice recording`); this module embeds the equivalents.

use alexa_net::DataType;
use std::collections::BTreeMap;

/// Categories an endpoint organization can belong to (Table 14's ontology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OntologyCategory {
    /// Collects usage/analytics data.
    AnalyticProvider,
    /// Buys/serves advertising.
    AdvertisingNetwork,
    /// Hosts or distributes content.
    ContentProvider,
    /// Operates the platform itself (Amazon only).
    PlatformProvider,
    /// The voice assistant service (Amazon only).
    VoiceAssistantService,
}

impl OntologyCategory {
    /// Label as printed in Table 14.
    pub fn label(self) -> &'static str {
        match self {
            OntologyCategory::AnalyticProvider => "analytic provider",
            OntologyCategory::AdvertisingNetwork => "advertising network",
            OntologyCategory::ContentProvider => "content provider",
            OntologyCategory::PlatformProvider => "platform provider",
            OntologyCategory::VoiceAssistantService => "voice assistant service",
        }
    }
}

/// The entity ontology: organization → categories, with subsumption of every
/// non-platform org under the "third party" umbrella term.
#[derive(Debug, Clone)]
pub struct EntityOntology {
    categories: BTreeMap<String, Vec<OntologyCategory>>,
}

/// Built-in organization categorization (Table 14).
const BUILTIN_ENTITIES: &[(&str, &[OntologyCategory])] = &[
    (
        "Amazon Technologies, Inc.",
        &[
            OntologyCategory::AnalyticProvider,
            OntologyCategory::AdvertisingNetwork,
            OntologyCategory::ContentProvider,
            OntologyCategory::PlatformProvider,
            OntologyCategory::VoiceAssistantService,
        ],
    ),
    (
        "Chartable Holding Inc",
        &[
            OntologyCategory::AnalyticProvider,
            OntologyCategory::AdvertisingNetwork,
        ],
    ),
    ("DataCamp Limited", &[OntologyCategory::ContentProvider]),
    ("Dilli Labs LLC", &[OntologyCategory::ContentProvider]),
    ("Garmin International", &[OntologyCategory::ContentProvider]),
    (
        "Liberated Syndication",
        &[
            OntologyCategory::AnalyticProvider,
            OntologyCategory::AdvertisingNetwork,
        ],
    ),
    (
        "National Public Radio, Inc.",
        &[OntologyCategory::ContentProvider],
    ),
    (
        "Philips International B.V.",
        &[OntologyCategory::ContentProvider],
    ),
    (
        "Podtrac Inc",
        &[
            OntologyCategory::AnalyticProvider,
            OntologyCategory::AdvertisingNetwork,
        ],
    ),
    (
        "Spotify AB",
        &[
            OntologyCategory::AnalyticProvider,
            OntologyCategory::AdvertisingNetwork,
        ],
    ),
    (
        "Triton Digital, Inc.",
        &[
            OntologyCategory::AnalyticProvider,
            OntologyCategory::AdvertisingNetwork,
        ],
    ),
    ("Voice Apps LLC", &[OntologyCategory::ContentProvider]),
    (
        "Life Covenant Church, Inc.",
        &[OntologyCategory::ContentProvider],
    ),
];

impl Default for EntityOntology {
    fn default() -> EntityOntology {
        EntityOntology::new()
    }
}

impl EntityOntology {
    /// Ontology preloaded with every organization the paper categorizes.
    pub fn new() -> EntityOntology {
        let mut categories = BTreeMap::new();
        for &(org, cats) in BUILTIN_ENTITIES {
            categories.insert(org.to_string(), cats.to_vec());
        }
        EntityOntology { categories }
    }

    /// Register (or override) an organization's categories.
    pub fn register(&mut self, org: &str, cats: &[OntologyCategory]) {
        self.categories.insert(org.to_string(), cats.to_vec());
    }

    /// Categories of an organization. Unknown orgs default to content
    /// provider (the conservative choice for functional backends).
    pub fn categories_of(&self, org: &str) -> Vec<OntologyCategory> {
        self.categories
            .get(org)
            .cloned()
            .unwrap_or_else(|| vec![OntologyCategory::ContentProvider])
    }

    /// Whether the org is the platform party.
    pub fn is_platform(&self, org: &str) -> bool {
        self.categories_of(org)
            .contains(&OntologyCategory::PlatformProvider)
    }

    /// Whether the umbrella term "third party" subsumes this org — true for
    /// every organization except the platform party.
    pub fn is_third_party_term_match(&self, org: &str) -> bool {
        !self.is_platform(org)
    }

    /// Vague category phrases (as found in policy text) that subsume an org.
    pub fn vague_phrases_for(&self, org: &str) -> Vec<&'static str> {
        let mut phrases = Vec::new();
        for cat in self.categories_of(org) {
            phrases.extend(match cat {
                OntologyCategory::AnalyticProvider => [
                    "analytics tool",
                    "analytics provider",
                    "analytics providers",
                ]
                .as_slice(),
                OntologyCategory::AdvertisingNetwork => {
                    ["advertising partner", "advertising partners", "ad network"].as_slice()
                }
                OntologyCategory::ContentProvider => [
                    "service provider",
                    "service providers",
                    "external service providers",
                ]
                .as_slice(),
                OntologyCategory::PlatformProvider => {
                    ["platform provider", "smart speaker platform"].as_slice()
                }
                OntologyCategory::VoiceAssistantService => {
                    ["voice partner", "voice assistant platform"].as_slice()
                }
            });
        }
        if self.is_third_party_term_match(org) {
            phrases.push("third party");
            phrases.push("third parties");
            phrases.push("third-parties");
        }
        phrases
    }
}

/// The data ontology: data type → exact terms and vague hypernyms.
#[derive(Debug, Clone, Default)]
pub struct DataOntology;

impl DataOntology {
    /// Create the ontology.
    pub fn new() -> DataOntology {
        DataOntology
    }

    /// Exact (clear) terms disclosing a data type, per Table 13's examples.
    pub fn clear_terms(&self, dt: DataType) -> &'static [&'static str] {
        match dt {
            DataType::VoiceRecording => &[
                "voice recording",
                "voice recordings",
                "audio recording",
                "audio recordings",
            ],
            DataType::TextCommand => &["text command", "transcribed command"],
            DataType::CustomerId => &[
                "unique identifier",
                "anonymized id",
                "uuid",
                "customer id",
                "user id",
            ],
            DataType::SkillId => &["skill identifier", "skill id"],
            DataType::Language => &["language preference"],
            DataType::Timezone => &["time zone setting", "timezone setting"],
            DataType::Preference => &["settings preferences", "app settings"],
            DataType::AudioPlayerEvent => &["audio player events", "playback events"],
            DataType::DeviceMetric => &["device metrics", "amazon services metrics"],
        }
    }

    /// Vague hypernyms that cover a data type without naming it.
    pub fn vague_terms(&self, dt: DataType) -> &'static [&'static str] {
        match dt {
            DataType::VoiceRecording => &["sensory information", "sensory info"],
            DataType::TextCommand => &["commands", "requests you make"],
            DataType::CustomerId | DataType::SkillId => {
                &["cookie", "identifiers", "persistent identifiers"]
            }
            DataType::Language | DataType::Timezone => {
                &["regional and language settings", "device settings"]
            }
            DataType::Preference => &["preferences", "settings"],
            DataType::AudioPlayerEvent | DataType::DeviceMetric => {
                &["usage data", "interaction data", "device information"]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amazon_has_all_five_categories() {
        let o = EntityOntology::new();
        assert_eq!(o.categories_of("Amazon Technologies, Inc.").len(), 5);
        assert!(o.is_platform("Amazon Technologies, Inc."));
    }

    #[test]
    fn podtrac_is_analytic_and_advertising() {
        let o = EntityOntology::new();
        let cats = o.categories_of("Podtrac Inc");
        assert!(cats.contains(&OntologyCategory::AnalyticProvider));
        assert!(cats.contains(&OntologyCategory::AdvertisingNetwork));
        assert!(!cats.contains(&OntologyCategory::ContentProvider));
    }

    #[test]
    fn unknown_org_defaults_to_content_provider() {
        let o = EntityOntology::new();
        assert_eq!(
            o.categories_of("Mystery Corp"),
            vec![OntologyCategory::ContentProvider]
        );
    }

    #[test]
    fn third_party_term_subsumes_everyone_but_amazon() {
        let o = EntityOntology::new();
        assert!(o.is_third_party_term_match("Podtrac Inc"));
        assert!(o.is_third_party_term_match("Mystery Corp"));
        assert!(!o.is_third_party_term_match("Amazon Technologies, Inc."));
    }

    #[test]
    fn vague_phrases_follow_categories() {
        let o = EntityOntology::new();
        let phrases = o.vague_phrases_for("Podtrac Inc");
        assert!(phrases.contains(&"analytics tool"));
        assert!(phrases.contains(&"advertising partners"));
        assert!(phrases.contains(&"third parties"));
        // Amazon's vague phrases include the voice-partner wording but not
        // the third-party umbrella.
        let amazon = o.vague_phrases_for("Amazon Technologies, Inc.");
        assert!(amazon.contains(&"voice partner"));
        assert!(!amazon.contains(&"third party"));
    }

    #[test]
    fn registration_overrides_default() {
        let mut o = EntityOntology::new();
        o.register("Mystery Corp", &[OntologyCategory::AdvertisingNetwork]);
        assert_eq!(
            o.categories_of("Mystery Corp"),
            vec![OntologyCategory::AdvertisingNetwork]
        );
    }

    #[test]
    fn data_ontology_voice_terms() {
        let d = DataOntology::new();
        assert!(d
            .clear_terms(alexa_net::DataType::VoiceRecording)
            .contains(&"voice recording"));
        assert!(d
            .vague_terms(alexa_net::DataType::VoiceRecording)
            .contains(&"sensory information"));
    }

    #[test]
    fn clear_and_vague_terms_disjoint() {
        let d = DataOntology::new();
        for dt in alexa_net::DataType::ALL {
            for c in d.clear_terms(dt) {
                assert!(!d.vague_terms(dt).contains(c), "{dt:?}: {c}");
            }
        }
    }
}
