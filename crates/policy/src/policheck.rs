//! The PoliCheck reimplementation: disclosure classification.
//!
//! Given a policy document and an observed flow, classify the disclosure as
//! **clear** (the policy names the exact data type / organization),
//! **vague** (a category term or "third party" subsumes it through the
//! ontologies), **omitted** (no statement covers it), or **no policy**.
//! Negated sentences ("we do *not* sell…") are never read as disclosures.
//!
//! §7.2.2's platform-policy experiment is supported: with
//! [`PoliCheck::include_platform_policy`], Amazon's own privacy notice is
//! consulted in addition to the skill's — the paper finds this turns every
//! data-type flow into a clear or vague disclosure.

use crate::document::PolicyDoc;
use crate::generator::PolicyGenerator;
use crate::ontology::{DataOntology, EntityOntology};
use alexa_net::DataType;

/// PoliCheck's disclosure classification (§7.2.1).
///
/// `Incorrect` is the original PoliCheck's contradiction class: the policy
/// *denies* a flow that the traffic demonstrates. The paper's endpoint
/// analysis drops it (contradictions need data types); the full-tuple
/// analysis here supports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DisclosureClass {
    /// The flow is disclosed with the exact organization name / data term.
    Clear,
    /// The flow is disclosed with a category term or "third party".
    Vague,
    /// The policy denies the flow that the traffic shows.
    Incorrect,
    /// No statement covers the flow.
    Omitted,
    /// The skill provides no (retrievable) policy.
    NoPolicy,
}

impl std::fmt::Display for DisclosureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DisclosureClass::Clear => "clear",
            DisclosureClass::Vague => "vague",
            DisclosureClass::Incorrect => "incorrect",
            DisclosureClass::Omitted => "omitted",
            DisclosureClass::NoPolicy => "no policy",
        };
        f.write_str(s)
    }
}

/// Negation cues: a sentence containing one is not a disclosure.
const NEGATIONS: &[&str] = &["do not", "does not", "don't", "never", "will not", "won't"];

/// Data-practice verbs: a sentence only discloses a flow to an entity if it
/// states a practice, not if it merely mentions the entity ("this skill
/// works with Amazon Alexa" is not a collection disclosure).
const PRACTICE_VERBS: &[&str] = &[
    "collect", "share", "send", "sent", "receive", "process", "disclose", "transmit", "store",
];

fn states_practice(sentence: &str) -> bool {
    PRACTICE_VERBS.iter().any(|v| sentence.contains(v))
}

/// The adapted PoliCheck analyzer.
///
/// ```
/// use alexa_policy::{DisclosureClass, PoliCheck, PolicyDoc};
/// let pc = PoliCheck::new();
/// let doc = PolicyDoc::new("demo", "We may share data with third parties.");
/// assert_eq!(pc.classify_endpoint(Some(&doc), "Podtrac Inc"), DisclosureClass::Vague);
/// assert_eq!(pc.classify_endpoint(None, "Podtrac Inc"), DisclosureClass::NoPolicy);
/// ```
#[derive(Debug)]
pub struct PoliCheck {
    entities: EntityOntology,
    data: DataOntology,
    /// Consult Amazon's own policy in addition to the skill's (§7.2.2).
    pub include_platform_policy: bool,
    amazon_policy: PolicyDoc,
}

impl Default for PoliCheck {
    fn default() -> PoliCheck {
        PoliCheck::new()
    }
}

impl PoliCheck {
    /// Analyzer with built-in ontologies, platform policy not included.
    pub fn new() -> PoliCheck {
        PoliCheck {
            entities: EntityOntology::new(),
            data: DataOntology::new(),
            include_platform_policy: false,
            amazon_policy: PolicyGenerator::new().amazon_policy(),
        }
    }

    /// Analyzer that also consults the platform's policy (§7.2.2).
    pub fn with_platform_policy() -> PoliCheck {
        PoliCheck {
            include_platform_policy: true,
            ..PoliCheck::new()
        }
    }

    /// Mutable access to the entity ontology (to register ecosystem orgs).
    pub fn entities_mut(&mut self) -> &mut EntityOntology {
        &mut self.entities
    }

    /// Non-negated sentences of a document, lower-cased.
    fn statements(doc: &PolicyDoc) -> Vec<String> {
        doc.sentences()
            .map(|s| s.to_ascii_lowercase())
            .filter(|s| !NEGATIONS.iter().any(|n| s.contains(n)))
            .collect()
    }

    /// Negated sentences of a document, lower-cased — candidates for
    /// `Incorrect` classifications.
    fn denials(doc: &PolicyDoc) -> Vec<String> {
        doc.sentences()
            .map(|s| s.to_ascii_lowercase())
            .filter(|s| NEGATIONS.iter().any(|n| s.contains(n)))
            .collect()
    }

    /// Classify the disclosure of a contacted endpoint organization.
    ///
    /// With [`PoliCheck::include_platform_policy`], the platform's policy is
    /// consulted even for skills without any policy of their own — §7.2.2's
    /// experiment finds that this alone turns every flow into a clear or
    /// vague disclosure.
    pub fn classify_endpoint(&self, doc: Option<&PolicyDoc>, org: &str) -> DisclosureClass {
        let own = match doc {
            Some(doc) => self.classify_endpoint_in(doc, org),
            None => DisclosureClass::NoPolicy,
        };
        if self.include_platform_policy {
            own.min(self.classify_endpoint_in(&self.amazon_policy, org))
        } else {
            own
        }
    }

    fn classify_endpoint_in(&self, doc: &PolicyDoc, org: &str) -> DisclosureClass {
        let org_lower = org.to_ascii_lowercase();
        let statements = Self::statements(doc);
        if statements
            .iter()
            .any(|s| states_practice(s) && s.contains(&org_lower))
        {
            return DisclosureClass::Clear;
        }
        // Amazon is also clearly disclosed by its informal names — but only
        // in sentences stating a data practice ("works with Amazon Alexa"
        // does not disclose collection).
        if org == alexa_net::orgmap::AMAZON
            && statements
                .iter()
                .any(|s| states_practice(s) && (s.contains("amazon") || s.contains("alexa")))
        {
            return DisclosureClass::Clear;
        }
        let phrases = self.entities.vague_phrases_for(org);
        if statements
            .iter()
            .any(|s| states_practice(s) && phrases.iter().any(|p| s.contains(p)))
        {
            return DisclosureClass::Vague;
        }
        DisclosureClass::Omitted
    }

    /// Classify the disclosure of a collected data type (see
    /// [`PoliCheck::classify_endpoint`] for the platform-policy semantics).
    pub fn classify_data_type(&self, doc: Option<&PolicyDoc>, dt: DataType) -> DisclosureClass {
        let own = match doc {
            Some(doc) => self.classify_data_type_in(doc, dt),
            None => DisclosureClass::NoPolicy,
        };
        if self.include_platform_policy {
            own.min(self.classify_data_type_in(&self.amazon_policy, dt))
        } else {
            own
        }
    }

    fn classify_data_type_in(&self, doc: &PolicyDoc, dt: DataType) -> DisclosureClass {
        let statements = Self::statements(doc);
        let clear = self.data.clear_terms(dt);
        if statements
            .iter()
            .any(|s| clear.iter().any(|t| s.contains(t)))
        {
            return DisclosureClass::Clear;
        }
        let vague = self.data.vague_terms(dt);
        if statements
            .iter()
            .any(|s| vague.iter().any(|t| s.contains(t)))
        {
            return DisclosureClass::Vague;
        }
        // No positive statement — does the policy outright deny a flow the
        // traffic demonstrates? (PoliCheck's "incorrect" class.)
        let denials = Self::denials(doc);
        if denials
            .iter()
            .any(|s| states_practice(s) && clear.iter().any(|t| s.contains(t)))
        {
            return DisclosureClass::Incorrect;
        }
        DisclosureClass::Omitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> PolicyDoc {
        PolicyDoc::new("t", text)
    }

    #[test]
    fn no_policy_classifies_no_policy() {
        let pc = PoliCheck::new();
        assert_eq!(
            pc.classify_endpoint(None, "Podtrac Inc"),
            DisclosureClass::NoPolicy
        );
        assert_eq!(
            pc.classify_data_type(None, DataType::VoiceRecording),
            DisclosureClass::NoPolicy
        );
    }

    #[test]
    fn exact_org_name_is_clear() {
        let pc = PoliCheck::new();
        let d = doc("We share information with Podtrac Inc.");
        assert_eq!(
            pc.classify_endpoint(Some(&d), "Podtrac Inc"),
            DisclosureClass::Clear
        );
    }

    #[test]
    fn sonos_style_amazon_disclosure_is_clear() {
        // The paper's example: Sonos states voice recordings are sent to the
        // voice partner "for example, Amazon" — a clear platform disclosure.
        let pc = PoliCheck::new();
        let d = doc("The actual recording of your voice command is then sent to the voice partner you have authorized, for example Amazon.");
        assert_eq!(
            pc.classify_endpoint(Some(&d), alexa_net::orgmap::AMAZON),
            DisclosureClass::Clear
        );
    }

    #[test]
    fn category_term_is_vague() {
        let pc = PoliCheck::new();
        // Harmony's wording: analytics tool → vague for Amazon (analytic provider).
        let d = doc("Products may send pseudonymous information to an analytics tool.");
        assert_eq!(
            pc.classify_endpoint(Some(&d), alexa_net::orgmap::AMAZON),
            DisclosureClass::Vague
        );
        // Charles Stanley Radio's wording for third parties.
        let d2 = doc("We may also share your personal information with external service providers who help us better serve you.");
        assert_eq!(
            pc.classify_endpoint(Some(&d2), "Voice Apps LLC"),
            DisclosureClass::Vague
        );
    }

    #[test]
    fn third_party_umbrella_is_vague_for_nonplatform_only() {
        let pc = PoliCheck::new();
        let d = doc("We may share data with third parties.");
        assert_eq!(
            pc.classify_endpoint(Some(&d), "Podtrac Inc"),
            DisclosureClass::Vague
        );
        assert_eq!(
            pc.classify_endpoint(Some(&d), alexa_net::orgmap::AMAZON),
            DisclosureClass::Omitted
        );
    }

    #[test]
    fn silence_is_omitted() {
        let pc = PoliCheck::new();
        let d = doc("We respect your privacy.");
        assert_eq!(
            pc.classify_endpoint(Some(&d), "Podtrac Inc"),
            DisclosureClass::Omitted
        );
        assert_eq!(
            pc.classify_data_type(Some(&d), DataType::SkillId),
            DisclosureClass::Omitted
        );
    }

    #[test]
    fn negated_statements_do_not_disclose() {
        // Endpoint analysis drops the incorrect class (a contradiction
        // cannot be determined without data types, §7.2.1): a denial reads
        // as omitted.
        let pc = PoliCheck::new();
        let d = doc("We do not share your data with third parties.");
        assert_eq!(
            pc.classify_endpoint(Some(&d), "Podtrac Inc"),
            DisclosureClass::Omitted
        );
    }

    #[test]
    fn data_type_denials_are_incorrect() {
        // classify_data_type is only called for flows the traffic shows, so
        // an explicit denial is a contradiction — PoliCheck's "incorrect".
        let pc = PoliCheck::new();
        let d = doc("We never collect your voice recordings.");
        assert_eq!(
            pc.classify_data_type(Some(&d), DataType::VoiceRecording),
            DisclosureClass::Incorrect
        );
        // A denial of something else does not contaminate other types.
        assert_eq!(
            pc.classify_data_type(Some(&d), DataType::SkillId),
            DisclosureClass::Omitted
        );
        // The generic "we do not sell personal information" boilerplate
        // names no data type and stays omitted.
        let boiler = doc("We do not sell your personal information to anyone.");
        assert_eq!(
            pc.classify_data_type(Some(&boiler), DataType::VoiceRecording),
            DisclosureClass::Omitted
        );
    }

    #[test]
    fn data_type_clear_and_vague() {
        let pc = PoliCheck::new();
        let clear = doc("We collect your voice recordings to respond to requests.");
        assert_eq!(
            pc.classify_data_type(Some(&clear), DataType::VoiceRecording),
            DisclosureClass::Clear
        );
        let vague = doc("We may collect sensory information from the device.");
        assert_eq!(
            pc.classify_data_type(Some(&vague), DataType::VoiceRecording),
            DisclosureClass::Vague
        );
    }

    #[test]
    fn platform_policy_upgrades_data_disclosures() {
        // §7.2.2: with Amazon's policy consulted, every data flow becomes
        // clear or vague.
        let pc = PoliCheck::with_platform_policy();
        let silent = doc("We respect your privacy.");
        for dt in DataType::ALL {
            let cls = pc.classify_data_type(Some(&silent), dt);
            assert!(
                cls == DisclosureClass::Clear || cls == DisclosureClass::Vague,
                "{dt:?} classified {cls}"
            );
        }
    }

    #[test]
    fn class_ordering_supports_min_merge() {
        assert!(DisclosureClass::Clear < DisclosureClass::Vague);
        assert!(DisclosureClass::Vague < DisclosureClass::Incorrect);
        assert!(DisclosureClass::Incorrect < DisclosureClass::Omitted);
        assert!(DisclosureClass::Omitted < DisclosureClass::NoPolicy);
    }

    #[test]
    fn matching_is_case_insensitive() {
        let pc = PoliCheck::new();
        let d = doc("WE COLLECT YOUR VOICE RECORDINGS.");
        assert_eq!(
            pc.classify_data_type(Some(&d), DataType::VoiceRecording),
            DisclosureClass::Clear
        );
    }
}
