//! Policy documents: text plus sentence access.

/// A downloaded privacy-policy document for one skill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyDoc {
    /// Skill the policy belongs to (marketplace id), or `"amazon"` for the
    /// platform's own policy.
    pub skill_id: String,
    /// Full policy text.
    pub text: String,
}

impl PolicyDoc {
    /// Create a document.
    pub fn new(skill_id: impl Into<String>, text: impl Into<String>) -> PolicyDoc {
        PolicyDoc {
            skill_id: skill_id.into(),
            text: text.into(),
        }
    }

    /// Split the text into trimmed, non-empty sentences.
    pub fn sentences(&self) -> impl Iterator<Item = &str> {
        self.text
            .split(['.', '!', '?'])
            .map(str::trim)
            .filter(|s| !s.is_empty())
    }

    /// Whether the text mentions the platform (Amazon or Alexa) at all —
    /// the §7.1 statistic (129 of 188 policies do not).
    pub fn mentions_platform(&self) -> bool {
        let lower = self.text.to_ascii_lowercase();
        lower.contains("amazon") || lower.contains("alexa")
    }

    /// Whether the text links to Amazon's own privacy policy.
    pub fn links_platform_policy(&self) -> bool {
        self.text
            .to_ascii_lowercase()
            .contains("amazon.com/privacy")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentences_split_and_trim() {
        let d = PolicyDoc::new("s", "We respect privacy. We collect data!  Really? ");
        let sents: Vec<&str> = d.sentences().collect();
        assert_eq!(
            sents,
            vec!["We respect privacy", "We collect data", "Really"]
        );
    }

    #[test]
    fn platform_mention_detection() {
        assert!(PolicyDoc::new("s", "This skill works with Amazon Alexa.").mentions_platform());
        assert!(PolicyDoc::new("s", "alexa is used").mentions_platform());
        assert!(!PolicyDoc::new("s", "We collect data.").mentions_platform());
    }

    #[test]
    fn platform_policy_link_detection() {
        assert!(
            PolicyDoc::new("s", "See www.amazon.com/privacy for details.").links_platform_policy()
        );
        assert!(!PolicyDoc::new("s", "See Amazon for details.").links_platform_policy());
    }

    #[test]
    fn empty_text_has_no_sentences() {
        assert_eq!(PolicyDoc::new("s", "").sentences().count(), 0);
    }
}
