//! Renders English policy text from a skill's planted [`PolicySpec`].
//!
//! The real study downloads policies from the marketplace; our substitute
//! renders realistic text whose disclosure content is controlled by the
//! spec. Crucially, the analyzer never sees the spec — only this text — and
//! the generator injects **off-lexicon quirks** for a deterministic ~10% of
//! disclosures (unusual phrasings the analyzer's term lists do not cover),
//! so the PoliCheck validation (§7.2.3) measures genuine NLP slippage
//! rather than a tautology.

use crate::document::PolicyDoc;
use crate::ontology::{DataOntology, EntityOntology};
use alexa_net::DataType;
use alexa_platform::{DisclosureLevel, Skill};

/// Policy-text generator.
#[derive(Debug, Default)]
pub struct PolicyGenerator {
    entities: EntityOntology,
    data: DataOntology,
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl PolicyGenerator {
    /// Create a generator with the built-in ontologies.
    pub fn new() -> PolicyGenerator {
        PolicyGenerator::default()
    }

    /// Render the policy document for a skill, or `None` when the skill has
    /// no retrievable policy (no link, or a dead link).
    pub fn render(&self, skill: &Skill) -> Option<PolicyDoc> {
        if !skill.policy.has_document() {
            return None;
        }
        let mut text = String::new();
        let mut push = |s: &str| {
            text.push_str(s);
            text.push(' ');
        };

        push(&format!("{} Privacy Policy.", skill.vendor));
        push("We respect your privacy and are committed to protecting it.");
        push("This policy describes how we handle information when you use our products.");
        // A negated sentence — a correct analyzer must not read this as a
        // disclosure of selling/sharing.
        push("We do not sell your personal information to anyone.");

        if skill.policy.mentions_platform {
            push("This skill works with Amazon Alexa.");
        }
        if skill.policy.links_platform_policy {
            push("For details on the platform's data practices, see the Amazon privacy notice at www.amazon.com/privacy.");
        }

        for (&dt, &level) in &skill.policy.data_disclosures {
            let key = fnv(&format!("{}|data|{dt:?}", skill.id.0));
            match level {
                DisclosureLevel::Clear => {
                    if key.is_multiple_of(13) {
                        // Off-lexicon quirk: clearly about the data type, but
                        // phrased outside the analyzer's term list.
                        push(&quirky_clear_sentence(dt));
                    } else {
                        let terms = self.data.clear_terms(dt);
                        let term = terms[(key % terms.len() as u64) as usize];
                        push(&format!("We collect your {term} when you use the skill."));
                    }
                }
                DisclosureLevel::Vague => {
                    if key.is_multiple_of(10) {
                        push("We may gather certain information to improve our services.");
                    } else {
                        let terms = self.data.vague_terms(dt);
                        let term = terms[(key % terms.len() as u64) as usize];
                        push(&format!("We may collect {term} to improve our services."));
                    }
                }
                DisclosureLevel::Denied => {
                    // An outright lie: the flow exists in the traffic.
                    let terms = self.data.clear_terms(dt);
                    let term = terms[(key % terms.len() as u64) as usize];
                    push(&format!("We never collect your {term}."));
                }
                DisclosureLevel::Omitted => {}
            }
        }

        for (org, &level) in &skill.policy.endpoint_disclosures {
            let key = fnv(&format!("{}|ep|{org}", skill.id.0));
            match level {
                DisclosureLevel::Clear => {
                    push(&format!(
                        "Information from your interactions is received and processed by {org}."
                    ));
                }
                DisclosureLevel::Vague => {
                    if key.is_multiple_of(10) {
                        // Off-lexicon quirk: "trusted partners" is not in the
                        // analyzer's vague-phrase lists.
                        push("We may also share information with our trusted partners.");
                    } else {
                        let phrases = self.entities.vague_phrases_for(org);
                        let phrase = phrases[(key % phrases.len() as u64) as usize];
                        push(&format!(
                            "We may share your personal information with {phrase}."
                        ));
                    }
                }
                DisclosureLevel::Denied => {
                    push(&format!("We never share information with {org}."));
                }
                DisclosureLevel::Omitted => {}
            }
        }

        push("We retain information only as long as necessary.");
        push(&format!(
            "Contact us at privacy@{}.example.com with any questions.",
            skill
                .vendor
                .to_ascii_lowercase()
                .replace([' ', ',', '.', '\''], "")
        ));
        push("We may update this policy from time to time.");

        Some(PolicyDoc::new(
            skill.id.0.clone(),
            text.trim_end().to_string(),
        ))
    }

    /// Amazon's own privacy notice, with the disclosure terms the paper's
    /// Table 13 lists in its "Amazon" column.
    pub fn amazon_policy(&self) -> PolicyDoc {
        let text = "Amazon Privacy Notice. \
            We collect your voice recordings when you speak to Alexa. \
            We receive and process the requests you make to our services. \
            We collect a unique identifier and cookie to provide our services. \
            We receive your time zone setting and settings preferences. \
            We receive your device settings, including regional and language settings. \
            We collect usage data about how you interact with our services. \
            We collect device metrics and Amazon Services metrics to improve reliability. \
            We use information to personalize your experience.";
        PolicyDoc::new("amazon", text)
    }
}

/// A clearly-intended but off-lexicon disclosure sentence per data type.
fn quirky_clear_sentence(dt: DataType) -> String {
    match dt {
        DataType::VoiceRecording => "We store what you say to the device.".to_string(),
        DataType::TextCommand => "We keep the text of your requests.".to_string(),
        DataType::CustomerId => "An account number is attached to your requests.".to_string(),
        DataType::SkillId => "Each request is tagged with the application number.".to_string(),
        DataType::Language => "We note which locale you use.".to_string(),
        DataType::Timezone => "We note where your clock is set.".to_string(),
        DataType::Preference => "Your choices in the app are remembered.".to_string(),
        DataType::AudioPlayerEvent => "We see when you press play.".to_string(),
        DataType::DeviceMetric => "We watch how the device performs.".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexa_platform::{PolicySpec, SkillCategory, SkillId};
    use std::collections::BTreeMap;

    fn skill_with_policy(spec: PolicySpec) -> Skill {
        Skill {
            id: SkillId("gen-test".into()),
            name: "Gen Test".into(),
            vendor: "Test Vendor".into(),
            category: SkillCategory::Dating,
            invocation: "gen test".into(),
            sample_utterances: vec![],
            reviews: 1,
            streaming: false,
            fails_to_load: false,
            requires_account_linking: false,
            permissions: vec![],
            backends: vec![],
            collects: vec![],
            policy: spec,
        }
    }

    fn doc_spec() -> PolicySpec {
        PolicySpec {
            has_link: true,
            retrievable: true,
            ..PolicySpec::none()
        }
    }

    #[test]
    fn no_document_renders_none() {
        let g = PolicyGenerator::new();
        assert!(g.render(&skill_with_policy(PolicySpec::none())).is_none());
        let broken = PolicySpec {
            has_link: true,
            retrievable: false,
            ..PolicySpec::none()
        };
        assert!(g.render(&skill_with_policy(broken)).is_none());
    }

    #[test]
    fn generic_policy_never_mentions_platform() {
        let g = PolicyGenerator::new();
        let doc = g.render(&skill_with_policy(doc_spec())).unwrap();
        assert!(!doc.mentions_platform());
    }

    #[test]
    fn platform_mention_and_link_render() {
        let g = PolicyGenerator::new();
        let mut spec = doc_spec();
        spec.mentions_platform = true;
        spec.links_platform_policy = true;
        let doc = g.render(&skill_with_policy(spec)).unwrap();
        assert!(doc.mentions_platform());
        assert!(doc.links_platform_policy());
    }

    #[test]
    fn clear_data_disclosure_contains_a_clear_term() {
        let g = PolicyGenerator::new();
        let mut spec = doc_spec();
        spec.data_disclosures
            .insert(DataType::VoiceRecording, DisclosureLevel::Clear);
        let doc = g.render(&skill_with_policy(spec)).unwrap();
        let lower = doc.text.to_ascii_lowercase();
        let ont = DataOntology::new();
        let hit = ont
            .clear_terms(DataType::VoiceRecording)
            .iter()
            .any(|t| lower.contains(t))
            || lower.contains("we store what you say");
        assert!(hit, "no clear voice term in: {}", doc.text);
    }

    #[test]
    fn omitted_disclosures_render_nothing() {
        let g = PolicyGenerator::new();
        let mut spec = doc_spec();
        spec.data_disclosures
            .insert(DataType::CustomerId, DisclosureLevel::Omitted);
        let mut eps = BTreeMap::new();
        eps.insert("Podtrac Inc".to_string(), DisclosureLevel::Omitted);
        spec.endpoint_disclosures = eps;
        let doc = g.render(&skill_with_policy(spec)).unwrap();
        let lower = doc.text.to_ascii_lowercase();
        assert!(!lower.contains("unique identifier"));
        assert!(!lower.contains("podtrac"));
    }

    #[test]
    fn clear_endpoint_disclosure_names_org() {
        let g = PolicyGenerator::new();
        let mut spec = doc_spec();
        spec.endpoint_disclosures.insert(
            "Amazon Technologies, Inc.".to_string(),
            DisclosureLevel::Clear,
        );
        let doc = g.render(&skill_with_policy(spec)).unwrap();
        assert!(doc.text.contains("Amazon Technologies, Inc."));
    }

    #[test]
    fn rendering_is_deterministic() {
        let g = PolicyGenerator::new();
        let mut spec = doc_spec();
        spec.data_disclosures
            .insert(DataType::Preference, DisclosureLevel::Vague);
        let a = g.render(&skill_with_policy(spec.clone())).unwrap();
        let b = g.render(&skill_with_policy(spec)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn amazon_policy_discloses_table13_terms() {
        let g = PolicyGenerator::new();
        let doc = g.amazon_policy();
        let lower = doc.text.to_ascii_lowercase();
        for term in [
            "voice recordings",
            "unique identifier",
            "time zone setting",
            "device metrics",
        ] {
            assert!(lower.contains(term), "missing {term}");
        }
    }

    #[test]
    fn every_policy_contains_the_negation_trap() {
        let g = PolicyGenerator::new();
        let doc = g.render(&skill_with_policy(doc_spec())).unwrap();
        assert!(doc
            .text
            .contains("We do not sell your personal information"));
    }
}
