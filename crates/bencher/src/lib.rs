//! Minimal offline benchmark harness with a `criterion`-0.5-shaped surface.
//!
//! The workspace's benches were written against crates.io `criterion`; this
//! package is aliased to that dependency name so they compile and run without
//! network access. It measures with plain [`std::time::Instant`] — median of a
//! fixed number of timed samples after a warm-up pass — and prints one line
//! per benchmark. No plotting, no statistical regression analysis; the point
//! is that `cargo bench` keeps working and produces usable wall-clock
//! numbers.
//!
//! Supported surface: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input`, [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.

use std::time::{Duration, Instant};

/// Opaque value laundering to keep the optimiser from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How to amortise per-iteration setup in [`Bencher::iter_batched`].
///
/// Only the variants the workspace uses; the shim times each routine call
/// individually, so the variant does not change measurement, only intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: setup cost is negligible next to routine.
    SmallInput,
    /// Larger per-iteration state.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median per-call time of the collected samples.
    measured: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, called once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        self.record(times);
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        self.record(times);
    }

    fn record(&mut self, mut times: Vec<Duration>) {
        times.sort_unstable();
        self.measured = Some(times[times.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        f(&mut b);
        self.report(&id.id, b.measured);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        f(&mut b, input);
        self.report(&id.id, b.measured);
        self
    }

    /// Finish the group (reporting happens per-benchmark; this is a no-op
    /// kept for criterion API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, measured: Option<Duration>) {
        match measured {
            Some(t) => println!(
                "bench: {}/{:<40} median {:>12.3?} ({} samples)",
                self.name, id, t, self.samples
            ),
            None => println!("bench: {}/{:<40} (no measurement)", self.name, id),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks (default 20 samples each).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 20,
            _criterion: self,
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 500u64), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![3u8; 64],
                |v| v.iter().map(|&x| x as u32).sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(unit_group, sample_bench);

    #[test]
    fn group_runs_every_benchmark() {
        unit_group();
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("exact", 25).id, "exact/25");
    }
}
