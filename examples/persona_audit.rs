//! Deep-dive into a single interest persona: what its skills leaked, which
//! endpoints were contacted, and how the ad ecosystem responded.
//!
//! ```sh
//! cargo run --release --example persona_audit -- "Fashion & Style"
//! ```

use alexa_audit::analysis::{bids, creatives, significance, traffic};
use alexa_audit::{AnalysisIndex, AuditConfig, AuditRun, Persona};
use alexa_platform::SkillCategory;

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Fashion & Style".to_string());
    let Some(category) = SkillCategory::ALL.iter().find(|c| c.label() == wanted) else {
        eprintln!("Unknown category {wanted:?}. Options:");
        for c in SkillCategory::ALL {
            eprintln!("  {}", c.label());
        }
        std::process::exit(1);
    };
    let persona = Persona::Interest(*category);

    let obs = AuditRun::execute(AuditConfig::small(42));
    let ix = AnalysisIndex::build(&obs);

    println!("=== Persona audit: {} ===\n", persona.name());

    // Network behaviour of this persona's skills.
    let per_skill = traffic::skill_traffic(&obs);
    let mine: Vec<_> = per_skill
        .iter()
        .filter(|t| t.persona == persona.name())
        .collect();
    println!(
        "{} skills produced traffic. Endpoints contacted:",
        mine.len()
    );
    let mut endpoints = std::collections::BTreeMap::new();
    for t in &mine {
        for e in &t.endpoints {
            *endpoints.entry(e.as_str().to_string()).or_insert(0usize) += 1;
        }
    }
    for (endpoint, n) in &endpoints {
        let org = obs
            .orgs
            .org_of(&alexa_net::Domain::parse(endpoint).unwrap())
            .unwrap_or("?");
        println!("  {endpoint:<55} {n:>3} skills  [{org}]");
    }

    // Bid response.
    let t5 = bids::table5(&ix);
    let (median, mean) = t5.get(&persona.name()).unwrap();
    let (vmedian, vmean) = t5.get("Vanilla").unwrap();
    println!(
        "\nBids (post-interaction, common slots): median {median:.3} vs vanilla {vmedian:.3} \
         ({:.1}x); mean {mean:.3} vs {vmean:.3}.",
        median / vmedian
    );
    let t7 = significance::table7(&ix);
    if let Some((p, r)) = t7.get(&persona.name()) {
        println!("Mann-Whitney U vs vanilla: p = {p:.3}, rank-biserial = {r:.3}.");
    }

    // Exclusive ads.
    let t8 = creatives::table8(&ix);
    let products = t8.products_for(&persona.name());
    if products.is_empty() {
        println!("No persona-exclusive Amazon ads observed.");
    } else {
        println!("Persona-exclusive Amazon ads: {products:?}");
    }
}
