//! Quickstart: run a reduced-scale audit end to end and print the headline
//! findings for each research question.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use alexa_audit::analysis::{bids, partners, policy, profiling, significance, traffic};
use alexa_audit::{AnalysisIndex, AuditConfig, AuditRun};

fn main() {
    // A reduced configuration keeps the quickstart fast; use
    // `AuditConfig::paper(seed)` for the full-scale reproduction.
    let config = AuditConfig::small(42);
    println!("Running audit (seed {}) ...\n", config.seed);
    let obs = AuditRun::execute(config);
    let ix = AnalysisIndex::build(&obs);

    // RQ1 — who collects data?
    let t1 = traffic::table1(&ix);
    println!(
        "RQ1: {} skills contacted Amazon, {} their own vendor, {} third parties ({} failed).",
        t1.skills_amazon, t1.skills_vendor, t1.skills_third_party, t1.skills_failed
    );
    let t2 = traffic::table2(&ix);
    println!(
        "     {:.1}% of all traffic is advertising & tracking.",
        100.0 * t2.total_ad_tracking
    );

    // RQ2 — is interaction data used for targeting?
    let t5 = bids::table5(&ix);
    let (vanilla_median, _) = t5.get("Vanilla").unwrap();
    let best = t5
        .rows
        .iter()
        .filter(|r| r.0 != "Vanilla")
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "\nRQ2: vanilla median CPM {:.3}; highest interest persona: {} at {:.3} ({:.1}x).",
        vanilla_median,
        best.0,
        best.1,
        best.1 / vanilla_median
    );
    let t7 = significance::table7(&ix);
    println!(
        "     personas bidding significantly above vanilla: {:?}",
        t7.significant()
    );
    let sync = partners::sync_analysis(&ix);
    println!(
        "     {} advertisers sync cookies with Amazon; {} downstream third parties.",
        sync.amazon_partners.len(),
        sync.downstream_parties.len()
    );
    let t12 = profiling::table12(&ix);
    println!(
        "     Amazon inferred interests for {} persona/phase combinations; files missing for {:?}.",
        t12.rows.len(),
        t12.missing_files
    );

    // RQ3 — policy compliance.
    let stats = policy::policy_stats(&ix);
    println!(
        "\nRQ3: {}/{} skills link a policy, {} retrievable, {} mention Amazon/Alexa.",
        stats.with_link, stats.total, stats.retrievable, stats.mention_platform
    );
    let v = policy::validation(&ix);
    println!(
        "     PoliCheck validation: micro F1 {:.1}%, macro F1 {:.1}%.",
        100.0 * v.micro.f1,
        100.0 * v.macro_avg.f1
    );

    println!(
        "\nFor every table and figure, run: cargo run --release -p alexa-bench --bin repro -- all"
    );
}
