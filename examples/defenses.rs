//! Evaluate the paper's proposed defenses (§8.1) by re-running the audit
//! with each one enabled and comparing the observable record:
//!
//! * a router **firewall** that blocks advertising & tracking endpoints;
//! * **on-device transcription** (text-only voice channel).
//!
//! ```sh
//! cargo run --release --example defenses
//! ```

use alexa_audit::analysis::defense;
use alexa_audit::{AnalysisIndex, AuditConfig, AuditRun, DefenseMode};

fn main() {
    let seed = 42;
    println!("Running baseline audit (seed {seed}) ...");
    let baseline = AuditRun::execute(AuditConfig::small(seed));

    println!("Running audit with the A&T firewall ...");
    let firewalled =
        AuditRun::execute(AuditConfig::small(seed).with_defense(DefenseMode::Firewall));

    println!("Running audit with on-device transcription ...\n");
    let text_only = AuditRun::execute(AuditConfig::small(seed).with_defense(DefenseMode::TextOnly));

    let baseline_ix = AnalysisIndex::build(&baseline);
    let firewalled_ix = AnalysisIndex::build(&firewalled);
    let text_only_ix = AnalysisIndex::build(&text_only);

    println!(
        "{}",
        defense::compare(
            "A&T firewall (blocking without breaking)",
            &baseline_ix,
            &firewalled_ix
        )
        .render()
    );
    println!(
        "{}",
        defense::compare(
            "on-device transcription (text-only)",
            &baseline_ix,
            &text_only_ix
        )
        .render()
    );

    println!(
        "Takeaway: both defenses remove their target observable (tracker traffic;\n\
         raw voice recordings) without breaking skill functionality — but neither\n\
         touches the bid uplift, because interest inference happens server-side\n\
         from content the platform necessarily receives. Transparency and control\n\
         at the platform level remain necessary, as the paper argues."
    );
}
