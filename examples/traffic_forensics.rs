//! Traffic forensics on archived captures.
//!
//! The paper releases its network captures for independent re-analysis.
//! This example demonstrates that pathway: run an audit, archive one
//! persona's router captures in the trace format, read the archive back,
//! and analyze the flows from disk alone.
//!
//! ```sh
//! cargo run --release --example traffic_forensics
//! ```

use alexa_audit::{AuditConfig, AuditRun};
use alexa_net::flowstats::{aggregate, top_by_bytes};
use alexa_net::{read_trace, write_trace, FilterList, OrgMap};

fn main() {
    let obs = AuditRun::execute(AuditConfig::small(42));
    let persona = "Fashion & Style";
    let captures = &obs.router_captures[persona];

    // Archive to the trace format (what a data release would ship).
    let archive = write_trace(captures);
    println!(
        "Archived {} capture sessions ({} lines, {} bytes) for {persona}.",
        captures.len(),
        archive.lines().count(),
        archive.len()
    );

    // Re-read from the archive and analyze from disk alone.
    let restored = read_trace(&archive).expect("well-formed archive");
    assert_eq!(restored.len(), captures.len());
    let stats = aggregate(&restored);

    let orgs = OrgMap::new();
    let fl = FilterList::new();
    println!("\nTop endpoints by byte volume:");
    println!(
        "{:<50} {:>8} {:>10} {:>9} {:>5}",
        "endpoint", "packets", "bytes", "sessions", "A&T"
    );
    for (domain, s) in top_by_bytes(&stats, 15) {
        println!(
            "{:<50} {:>8} {:>10} {:>9} {:>5}",
            domain.as_str(),
            s.packets(),
            s.bytes(),
            s.sessions,
            if fl.is_ad_tracking(domain) { "yes" } else { "" }
        );
    }

    let (at_bytes, total_bytes) = stats.iter().fold((0usize, 0usize), |(at, total), (d, s)| {
        (
            at + if fl.is_ad_tracking(d) { s.bytes() } else { 0 },
            total + s.bytes(),
        )
    });
    println!(
        "\nA&T byte share: {:.2}% of {total_bytes} bytes.",
        100.0 * at_bytes as f64 / total_bytes.max(1) as f64
    );
    let third_party = stats
        .keys()
        .filter(|d| orgs.org_of(d) != Some(alexa_net::orgmap::AMAZON))
        .count();
    println!(
        "Endpoints: {} total, {} non-Amazon.",
        stats.len(),
        third_party
    );
}
