//! Misactivation study: how often does the device wake — and record — when
//! nobody said the wake word?
//!
//! The paper motivates its audit partly with prior work showing smart
//! speakers "often misactivate and unintentionally record conversations"
//! (Dubois et al., PETS '20). The simulated voice pipeline carries that
//! misactivation process; this example measures it the way that prior work
//! did: play scripted non-wake-word audio at the device and count
//! recordings.
//!
//! ```sh
//! cargo run --release --example misactivations
//! ```

use alexa_platform::voice::{VoiceConfig, VoicePipeline};

const CONVERSATION: &[&str] = &[
    "I let Sarah borrow the car on Tuesday",
    "election results are coming in tonight",
    "alexander the great founded many cities",
    "can you pass the salt please",
    "the flex on that beam looks wrong to me",
    "I'm excited about the new season",
    "let's set the table for dinner",
    "unacceptable, they said, completely unacceptable",
];

fn main() {
    let hours = 24;
    let phrases_per_hour = 120; // a lively household
    let mut pipeline = VoicePipeline::new(7);

    let mut activations = 0u32;
    let mut by_phrase = vec![0u32; CONVERSATION.len()];
    for _hour in 0..hours {
        for i in 0..phrases_per_hour {
            let phrase = CONVERSATION[i % CONVERSATION.len()];
            if pipeline.wakes(phrase) {
                activations += 1;
                by_phrase[i % CONVERSATION.len()] += 1;
            }
        }
    }

    let total = hours * phrases_per_hour;
    println!("Simulated {hours} h of household conversation ({total} phrases).");
    println!(
        "Misactivations: {activations} ({:.2}% of phrases, {:.1} per hour)\n",
        100.0 * activations as f64 / total as f64,
        activations as f64 / hours as f64
    );
    println!("Per-phrase breakdown:");
    for (phrase, n) in CONVERSATION.iter().zip(&by_phrase) {
        println!("  {n:>3}  {phrase:?}");
    }

    // What a stricter wake-word model would buy.
    let mut strict = VoicePipeline::with_config(
        7,
        VoiceConfig {
            misactivation_rate: 0.001,
            ..VoiceConfig::default()
        },
    );
    let strict_activations = (0..total)
        .filter(|i| strict.wakes(CONVERSATION[*i % CONVERSATION.len()]))
        .count();
    println!(
        "\nWith a 10x better wake-word model: {strict_activations} misactivations \
         ({:.2}%).",
        100.0 * strict_activations as f64 / total as f64
    );
    println!(
        "Every misactivation ships a voice recording upstream — each one is a\n\
         private-conversation leak the paper's §2.2 warns about."
    );
}
