//! Privacy-policy compliance check: run the adapted PoliCheck over the
//! observed flows and print the disclosure breakdown, with and without the
//! platform's own policy (§7.2.2).
//!
//! ```sh
//! cargo run --release --example policy_compliance
//! ```

use alexa_audit::analysis::policy;
use alexa_audit::{AnalysisIndex, AuditConfig, AuditRun};

fn main() {
    let obs = AuditRun::execute(AuditConfig::small(42));
    let ix = AnalysisIndex::build(&obs);

    println!("{}", policy::policy_stats(&ix).render());

    println!("{}", policy::table13(&ix, false).render());

    println!("--- With Amazon's platform policy consulted (§7.2.2) ---\n");
    let upgraded = policy::table13(&ix, true);
    println!("{}", upgraded.render());
    println!(
        "All flows disclosed once the platform policy is included: {}\n",
        upgraded.all_disclosed()
    );

    println!("{}", policy::table14(&ix).render());
    println!("{}", policy::validation(&ix).render());
}
