//! Privacy-policy compliance check: run the adapted PoliCheck over the
//! observed flows and print the disclosure breakdown, with and without the
//! platform's own policy (§7.2.2).
//!
//! ```sh
//! cargo run --release --example policy_compliance
//! ```

use alexa_audit::analysis::policy;
use alexa_audit::{AuditConfig, AuditRun};

fn main() {
    let obs = AuditRun::execute(AuditConfig::small(42));

    println!("{}", policy::policy_stats(&obs).render());

    println!("{}", policy::table13(&obs, false).render());

    println!("--- With Amazon's platform policy consulted (§7.2.2) ---\n");
    let upgraded = policy::table13(&obs, true);
    println!("{}", upgraded.render());
    println!(
        "All flows disclosed once the platform policy is included: {}\n",
        upgraded.all_disclosed()
    );

    println!("{}", policy::table14(&obs).render());
    println!("{}", policy::validation(&obs).render());
}
