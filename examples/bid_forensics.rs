//! Bid forensics: the full RQ2 evidence chain — bid distributions,
//! holiday-season control, significance tests, cookie-sync recovery, and
//! partner vs non-partner bids.
//!
//! ```sh
//! cargo run --release --example bid_forensics
//! ```

use alexa_audit::analysis::{bids, partners, significance};
use alexa_audit::{AuditConfig, AuditRun};

fn main() {
    let obs = AuditRun::execute(AuditConfig::small(42));

    println!("{}", bids::table5(&obs).render());
    println!("{}", bids::table6(&obs).render());
    println!("{}", bids::figure3(&obs).render());
    println!("{}", significance::table7(&obs).render());

    let sync = partners::sync_analysis(&obs);
    println!("{}", sync.render());
    println!("{}", partners::table10(&obs).render());
    println!("{}", partners::figure6(&obs).render());

    println!("{}", significance::table11(&obs).render());
    println!("{}", bids::figure7(&obs).render());

    // The headline inference: does skill interaction raise bids?
    let t5 = bids::table5(&obs);
    let (vm, _) = t5.get("Vanilla").unwrap();
    let above = t5
        .rows
        .iter()
        .filter(|r| r.0 != "Vanilla" && r.1 > vm)
        .count();
    println!("\nConclusion: {above}/9 interest personas receive higher median bids than vanilla;");
    println!(
        "{} advertisers sync cookies with Amazon and propagate to {} downstream parties.",
        sync.amazon_partners.len(),
        sync.downstream_parties.len()
    );
}
