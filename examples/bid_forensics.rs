//! Bid forensics: the full RQ2 evidence chain — bid distributions,
//! holiday-season control, significance tests, cookie-sync recovery, and
//! partner vs non-partner bids.
//!
//! ```sh
//! cargo run --release --example bid_forensics
//! ```

use alexa_audit::analysis::{bids, partners, significance};
use alexa_audit::{AnalysisIndex, AuditConfig, AuditRun};

fn main() {
    let obs = AuditRun::execute(AuditConfig::small(42));
    let ix = AnalysisIndex::build(&obs);

    println!("{}", bids::table5(&ix).render());
    println!("{}", bids::table6(&ix).render());
    println!("{}", bids::figure3(&ix).render());
    println!("{}", significance::table7(&ix).render());

    let sync = partners::sync_analysis(&ix);
    println!("{}", sync.render());
    println!("{}", partners::table10(&ix).render());
    println!("{}", partners::figure6(&ix).render());

    println!("{}", significance::table11(&ix).render());
    println!("{}", bids::figure7(&ix).render());

    // The headline inference: does skill interaction raise bids?
    let t5 = bids::table5(&ix);
    let (vm, _) = t5.get("Vanilla").unwrap();
    let above = t5
        .rows
        .iter()
        .filter(|r| r.0 != "Vanilla" && r.1 > vm)
        .count();
    println!("\nConclusion: {above}/9 interest personas receive higher median bids than vanilla;");
    println!(
        "{} advertisers sync cookies with Amazon and propagate to {} downstream parties.",
        sync.amazon_partners.len(),
        sync.downstream_parties.len()
    );
}
