//! Cross-crate integration tests: the audit framework recovers the planted
//! ground truth from observables alone.

use alexa_audit::analysis::{
    audio, bids, creatives, partners, policy, profiling, significance, traffic,
};
use alexa_audit::{AnalysisIndex, AuditConfig, AuditRun, Observations, Persona};
use std::sync::OnceLock;

fn obs() -> &'static Observations {
    static OBS: OnceLock<Observations> = OnceLock::new();
    OBS.get_or_init(|| AuditRun::execute(AuditConfig::small(2024)))
}

fn ix() -> &'static AnalysisIndex<'static> {
    static IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();
    IX.get_or_init(|| AnalysisIndex::build(obs()))
}

#[test]
fn rq1_amazon_mediates_everything() {
    let t1 = traffic::table1(ix());
    // Every skill that produced traffic reached Amazon; no skill avoided it.
    assert!(t1.skills_amazon > 0);
    assert!(t1.skills_third_party < t1.skills_amazon);
    let t2 = traffic::table2(ix());
    let amazon_row = t2
        .rows
        .iter()
        .find(|r| r.0 == alexa_net::OrgClass::Amazon)
        .unwrap();
    assert!(amazon_row.1 + amazon_row.2 > 0.8);
}

#[test]
fn rq1_ad_tracking_traffic_is_minor_but_present() {
    let t2 = traffic::table2(ix());
    assert!(
        t2.total_ad_tracking > 0.01,
        "A&T share {}",
        t2.total_ad_tracking
    );
    assert!(
        t2.total_ad_tracking < 0.35,
        "A&T share {}",
        t2.total_ad_tracking
    );
}

#[test]
fn rq2_interaction_causes_bid_uplift() {
    let t5 = bids::table5(ix());
    let (vanilla, _) = t5.get("Vanilla").unwrap();
    let medians: Vec<f64> = t5
        .rows
        .iter()
        .filter(|r| r.0 != "Vanilla")
        .map(|r| r.1)
        .collect();
    let above = medians.iter().filter(|m| **m > vanilla).count();
    assert!(above >= 8, "{above}/9 personas above vanilla");
    // Max uplift should reach the paper's order of magnitude on means.
    let max_mean = t5.rows.iter().map(|r| r.2).fold(0.0, f64::max);
    let (_, vanilla_mean) = t5.get("Vanilla").unwrap();
    assert!(max_mean > 1.5 * vanilla_mean);
}

#[test]
fn rq2_no_uplift_before_interaction() {
    let f3 = bids::figure3(ix());
    let vanilla = f3
        .without_interaction
        .iter()
        .find(|(p, _)| p == "Vanilla")
        .map(|(_, s)| s.median)
        .unwrap();
    for (p, s) in &f3.without_interaction {
        assert!(
            s.median < 2.0 * vanilla,
            "{p} median {} vs vanilla {vanilla} before interaction",
            s.median
        );
    }
}

#[test]
fn rq2_significance_pattern() {
    let t7 = significance::table7(ix());
    let sig = t7.significant();
    // Strong categories separate; the planted-weak ones are not required to.
    assert!(sig.len() >= 3, "significant: {sig:?}");
    for p in &sig {
        let (_, effect) = t7.get(p).unwrap();
        assert!(effect > 0.0, "{p} significant with non-positive effect");
    }
}

#[test]
fn rq2_echo_web_equivalence() {
    let t11 = significance::table11(ix());
    // 27 comparisons; the paper found exactly one significant.
    assert!(
        t11.significant_pairs() <= 9,
        "too many echo-web differences: {}",
        t11.significant_pairs()
    );
}

#[test]
fn rq2_cookie_sync_recovery_is_exact() {
    let sa = partners::sync_analysis(ix());
    assert_eq!(sa.amazon_partners.len(), 41, "paper: 41 partners");
    assert!(!sa.amazon_syncs_out, "Amazon must never sync out");
    assert!(sa.downstream_parties.len() >= 200, "paper: 247 downstream");
}

#[test]
fn rq2_dsar_vs_targeting_gap() {
    // Wine & Beverages: targeted (higher bids) but DSAR shows no interests —
    // the transparency gap the paper highlights.
    let t12 = profiling::table12(ix());
    let wine_rows: Vec<_> = t12
        .rows
        .iter()
        .filter(|r| r.persona == "Wine & Beverages")
        .collect();
    assert!(
        wine_rows.is_empty(),
        "DSAR should show nothing for Wine & Beverages"
    );
    let t5 = bids::table5(ix());
    let (wine_median, _) = t5.get("Wine & Beverages").unwrap();
    let (vanilla_median, _) = t5.get("Vanilla").unwrap();
    assert!(
        wine_median > vanilla_median,
        "yet Wine & Beverages is targeted"
    );
}

#[test]
fn rq2_audio_ads_differ_by_persona() {
    let t9 = audio::table9(ix());
    let cc = t9.share("Connected Car", alexa_adtech::StreamingService::Spotify);
    let fs = t9.share("Fashion & Style", alexa_adtech::StreamingService::Spotify);
    assert!(cc < fs, "Spotify ad share: CC {cc} vs FS {fs}");
}

#[test]
fn rq2_exclusive_ads_recovered_without_ground_truth() {
    let t8 = creatives::table8(ix());
    // Every recovered exclusive ad is from Amazon and tied to one persona.
    for ad in &t8.amazon_exclusive {
        assert!(!ad.persona.is_empty());
        assert!(ad.appearances >= 1);
    }
}

#[test]
fn rq3_policy_marginals_recovered() {
    let s = policy::policy_stats(ix());
    assert_eq!((s.with_link, s.retrievable), (214, 188));
    assert_eq!(s.mention_platform, 59);
}

#[test]
fn rq3_most_flows_undisclosed() {
    let t13 = policy::table13(ix(), false);
    let mut disclosed = 0usize;
    let mut hidden = 0usize;
    for (c, v, o, n) in t13.rows.values() {
        disclosed += c + v;
        hidden += o + n;
    }
    assert!(hidden > disclosed, "disclosed {disclosed} hidden {hidden}");
}

#[test]
fn rq3_platform_policy_closes_the_gap() {
    assert!(policy::table13(ix(), true).all_disclosed());
}

#[test]
fn observations_only_contain_observables() {
    // The observable bundle must not leak hidden state: captured router
    // packets are all encrypted (no plaintext records).
    for captures in obs().router_captures.values() {
        for cap in captures {
            for p in &cap.packets {
                assert!(
                    p.payload.records().is_none(),
                    "router capture leaked plaintext for {}",
                    cap.label
                );
            }
        }
    }
}

#[test]
fn avs_captures_are_amazon_only() {
    for cap in &obs().avs_captures {
        for p in &cap.packets {
            assert_eq!(
                obs().orgs.org_of(&p.remote),
                Some(alexa_net::orgmap::AMAZON),
                "AVS Echo contacted {} ({})",
                p.remote,
                cap.label
            );
        }
    }
}

#[test]
fn full_report_renders() {
    let report = alexa_audit::report::full_report(obs());
    assert!(report.len() > 2_000);
    assert!(report.contains("Table 14"));
}

#[test]
fn persona_isolation_distinct_cookies() {
    // Sync user ids must differ across personas (fresh profiles per §3.1.1).
    let mut ids_by_persona: Vec<std::collections::BTreeSet<&str>> = Vec::new();
    for p in [Persona::Vanilla, Persona::WebHealth] {
        let ids = obs().crawl[&p.name()]
            .iter()
            .flat_map(|v| v.syncs.iter().map(|s| &*s.user_id))
            .collect();
        ids_by_persona.push(ids);
    }
    assert!(ids_by_persona[0].is_disjoint(&ids_by_persona[1]));
}

#[test]
fn certification_gap_reproduced_from_captures() {
    // Dynamic (traffic-informed) certification over the audit's own captures
    // catches the non-streaming ad embedders; static review cannot.
    let market = alexa_platform::Marketplace::generate(obs().seed);
    let traffic = alexa_audit::analysis::traffic::skill_traffic(obs());
    let mut flagged = std::collections::BTreeSet::new();
    for t in &traffic {
        let Some(skill) = market.get(&alexa_platform::SkillId(t.skill_id.clone())) else {
            continue;
        };
        let endpoints: Vec<alexa_net::Domain> = t.endpoints.iter().cloned().collect();
        let dynamic = alexa_platform::dynamic_review(skill, &endpoints);
        let statically_ok = alexa_platform::static_review(skill)
            .violations
            .iter()
            .all(|v| !matches!(v, alexa_platform::Violation::AdPolicyViolation { .. }));
        assert!(
            statically_ok,
            "{}: static review saw runtime backends",
            skill.name
        );
        if dynamic
            .violations
            .iter()
            .any(|v| matches!(v, alexa_platform::Violation::AdPolicyViolation { .. }))
        {
            flagged.insert(skill.name.clone());
        }
    }
    // The small run installs top-10 per category, so only a subset of the six
    // violators appears; whatever appears must be a genuine violator.
    let fl = alexa_net::FilterList::new();
    for name in &flagged {
        let s = market.by_name(name).unwrap();
        assert!(!s.streaming);
        assert!(s.backends.iter().any(|b| fl.is_ad_tracking(b)), "{name}");
    }
}

#[test]
fn captures_roundtrip_through_trace_archive() {
    for (persona, captures) in &obs().router_captures {
        let restored = alexa_net::read_trace(&alexa_net::write_trace(captures))
            .unwrap_or_else(|e| panic!("{persona}: {e}"));
        assert_eq!(&restored.len(), &captures.len(), "{persona}");
        for (a, b) in restored.iter().zip(captures.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.packets, b.packets);
        }
    }
}

#[test]
fn firewall_would_block_exactly_the_at_flows() {
    // Judging the undefended captures with the firewall marks exactly the
    // flows the filter lists call advertising & tracking.
    let fl = alexa_net::FilterList::new();
    let fw = alexa_net::Firewall::new();
    for captures in obs().router_captures.values() {
        for cap in captures {
            for p in &cap.packets {
                let blocked = fw.judge(p) == alexa_net::Verdict::Block;
                assert_eq!(blocked, fl.is_ad_tracking(&p.remote), "{}", p.remote);
            }
        }
    }
}
