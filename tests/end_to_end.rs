//! Paper-scale end-to-end test: runs the full `AuditConfig::paper`
//! experiment once and asserts the *shape* of every headline result
//! against the paper's findings.
//!
//! This is the reproduction's acceptance test. It is heavier than the unit
//! tests (a full 450-skill, 31-iteration run), so everything shares one
//! execution.

use alexa_audit::analysis::{audio, bids, partners, policy, profiling, significance, traffic};
use alexa_audit::{AnalysisIndex, AuditConfig, AuditRun, Observations};
use alexa_platform::SkillCategory;
use std::sync::OnceLock;

fn obs() -> &'static Observations {
    static OBS: OnceLock<Observations> = OnceLock::new();
    OBS.get_or_init(|| AuditRun::execute(AuditConfig::paper(7)))
}

fn ix() -> &'static AnalysisIndex<'static> {
    static IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();
    IX.get_or_init(|| AnalysisIndex::build(obs()))
}

#[test]
fn paper_table1_skill_counts() {
    let t1 = traffic::table1(ix());
    assert_eq!(t1.skills_total, 450);
    assert_eq!(t1.skills_failed, 4, "paper: 4 skills fail to load");
    // Paper: 446 skills contact Amazon, 2-3 their vendor, ~31 third parties.
    assert_eq!(t1.skills_amazon, 446);
    assert!(t1.skills_vendor <= 3, "vendor skills {}", t1.skills_vendor);
    assert!(
        (25..=40).contains(&t1.skills_third_party),
        "third-party skills {}",
        t1.skills_third_party
    );
}

#[test]
fn paper_table2_amazon_dominates() {
    let t2 = traffic::table2(ix());
    let amazon = t2
        .rows
        .iter()
        .find(|r| r.0 == alexa_net::OrgClass::Amazon)
        .unwrap();
    // Paper: Amazon 96.84% of traffic; A&T 9.4% in total.
    assert!(
        amazon.1 + amazon.2 > 0.9,
        "amazon share {}",
        amazon.1 + amazon.2
    );
    assert!(
        (0.02..0.30).contains(&t2.total_ad_tracking),
        "A&T share {}",
        t2.total_ad_tracking
    );
}

#[test]
fn paper_table3_fashion_leads_ad_tracking() {
    let t3 = traffic::table3(ix());
    // Fashion & Style contacts the most A&T services (paper: 9).
    assert_eq!(t3.rows[0].0, "Fashion & Style");
    assert!(t3.rows[0].1 >= 7, "fashion A&T domains {}", t3.rows[0].1);
    // Pets & Animals has the most functional third-party domains (paper: 11).
    let pets = t3.rows.iter().find(|r| r.0 == "Pets & Animals").unwrap();
    assert!(pets.2 >= 8, "pets functional domains {}", pets.2);
    // Health & Fitness has no A&T contact.
    if let Some(health) = t3.rows.iter().find(|r| r.0 == "Health & Fitness") {
        assert_eq!(health.1, 0);
    }
}

#[test]
fn paper_table5_uplift_pattern() {
    let t5 = bids::table5(ix());
    let (vanilla_median, vanilla_mean) = t5.get("Vanilla").unwrap();
    // All interest personas above vanilla on median; vanilla lowest.
    for cat in SkillCategory::ALL {
        let (median, _) = t5.get(cat.label()).unwrap();
        assert!(
            median > vanilla_median,
            "{} median {median} <= vanilla {vanilla_median}",
            cat
        );
    }
    // Median uplift of ~2x for most personas (paper: all but one). The
    // strong six land at 1.98–2.33x on this seed; 1.9 is the assertion
    // threshold to avoid knife-edge flakiness at exactly 2.0.
    let doubled = SkillCategory::ALL
        .iter()
        .filter(|c| t5.get(c.label()).unwrap().0 > 1.9 * vanilla_median)
        .count();
    assert!(
        doubled >= 5,
        "only {doubled} personas with ~2x median uplift"
    );
    // The maximum single bid reaches the ~30x regime the paper reports.
    let slots = bids::common_slots(
        ix(),
        &alexa_audit::Persona::echo_personas(),
        obs().post_window(),
    );
    let max_bid = SkillCategory::ALL
        .iter()
        .flat_map(|&c| {
            bids::pooled_bids(
                ix(),
                alexa_audit::Persona::Interest(c),
                obs().post_window(),
                &slots,
            )
        })
        .fold(0.0, f64::max);
    assert!(
        max_bid > 10.0 * vanilla_mean,
        "max bid {max_bid} vs vanilla mean {vanilla_mean}"
    );
}

#[test]
fn paper_table6_holiday_control() {
    let t6 = bids::table6(ix());
    // Pre-interaction (peak season): vanilla is NOT the lowest — everyone
    // is elevated. Post-interaction: vanilla falls below the interest mean.
    let (vanilla_pre, vanilla_post) = t6.get("Vanilla").unwrap();
    assert!(vanilla_pre > vanilla_post);
    let interest_post_mean: f64 = SkillCategory::ALL
        .iter()
        .map(|c| t6.get(c.label()).unwrap().1)
        .sum::<f64>()
        / 9.0;
    assert!(interest_post_mean > vanilla_post);
}

#[test]
fn paper_table7_significance_split() {
    let t7 = significance::table7(ix());
    let sig = t7.significant();
    // Paper: six personas significant; Smart Home, Wine & Beverages and
    // Health & Fitness are not. Require the same split ±1.
    assert!(
        (5..=7).contains(&sig.len()),
        "significant personas: {sig:?}"
    );
    for strong in ["Pets & Animals", "Connected Car", "Dating"] {
        assert!(
            sig.contains(&strong),
            "{strong} should be significant: {sig:?}"
        );
    }
    let weak_sig = ["Smart Home", "Wine & Beverages", "Health & Fitness"]
        .iter()
        .filter(|w| sig.contains(&w.to_string().as_str()))
        .count();
    assert!(
        weak_sig <= 1,
        "weak categories unexpectedly significant: {sig:?}"
    );
}

#[test]
fn paper_table9_spotify_connected_car_gap() {
    let t9 = audio::table9(ix());
    let cc = t9.share("Connected Car", alexa_adtech::StreamingService::Spotify);
    let fs = t9.share("Fashion & Style", alexa_adtech::StreamingService::Spotify);
    let vanilla = t9.share("Vanilla", alexa_adtech::StreamingService::Spotify);
    // Paper: CC gets about a fifth of the ads the other personas get.
    assert!(cc < fs / 3.0, "cc {cc} fs {fs}");
    assert!(cc < vanilla / 2.0, "cc {cc} vanilla {vanilla}");
    // Amazon Music is uniform.
    let am_cc = t9.share("Connected Car", alexa_adtech::StreamingService::AmazonMusic);
    let am_fs = t9.share(
        "Fashion & Style",
        alexa_adtech::StreamingService::AmazonMusic,
    );
    assert!((am_cc - am_fs).abs() < 0.15);
}

#[test]
fn paper_figure5_exclusive_brands() {
    let f5 = audio::figure5(ix());
    let fs_pandora =
        f5.exclusive_brands(alexa_adtech::StreamingService::Pandora, "Fashion & Style");
    assert!(
        fs_pandora.contains(&"Swiffer Wet Jet"),
        "Pandora FS exclusives: {fs_pandora:?}"
    );
    let cc_pandora = f5.exclusive_brands(alexa_adtech::StreamingService::Pandora, "Connected Car");
    assert!(
        cc_pandora.contains(&"Febreeze Car"),
        "Pandora CC exclusives: {cc_pandora:?}"
    );
    let fs_spotify =
        f5.exclusive_brands(alexa_adtech::StreamingService::Spotify, "Fashion & Style");
    assert!(
        fs_spotify.contains(&"Ashley") && fs_spotify.contains(&"Ross"),
        "Spotify FS exclusives: {fs_spotify:?}"
    );
}

#[test]
fn paper_sync_counts_exact() {
    let sa = partners::sync_analysis(ix());
    assert_eq!(sa.amazon_partners.len(), 41);
    assert_eq!(sa.downstream_parties.len(), 247);
    assert!(!sa.amazon_syncs_out);
}

#[test]
fn paper_table10_partners_bid_higher() {
    let t10 = partners::table10(ix());
    let mut median_wins = 0;
    for cat in SkillCategory::ALL {
        let (pm, _, nm, _) = t10.get(cat.label()).unwrap();
        if pm > nm {
            median_wins += 1;
        }
    }
    // Paper: partner medians higher for 6 of 9 interest personas.
    assert!(median_wins >= 5, "partner median wins: {median_wins}/9");
}

#[test]
fn paper_table11_echo_equals_web() {
    let t11 = significance::table11(ix());
    // Paper: 1 of 27 significant. Allow a small number.
    assert!(
        t11.significant_pairs() <= 5,
        "{} pairs",
        t11.significant_pairs()
    );
}

#[test]
fn paper_table12_interest_evolution() {
    use alexa_platform::DsarPhase;
    let t12 = profiling::table12(ix());
    assert_eq!(
        t12.interests(DsarPhase::AfterInstall, "Health & Fitness"),
        vec!["Electronics", "Home & Garden: DIY & Tools"]
    );
    assert_eq!(
        t12.interests(DsarPhase::AfterInteraction2, "Fashion & Style"),
        vec!["Fashion", "Video Entertainment"]
    );
    assert_eq!(t12.missing_files.len(), 5);
}

#[test]
fn paper_table13_disclosure_counts() {
    let t13 = policy::table13(ix(), false);
    let (clear, vague, omitted, nopolicy) = t13.get(alexa_net::DataType::VoiceRecording);
    // Paper: 20 clear / 18 vague / 147 omitted / 258 no policy. Our AVS pass
    // cannot audit streaming skills (same limitation as the paper's), so
    // totals run slightly below 446.
    let total = clear + vague + omitted + nopolicy;
    assert!((400..=446).contains(&total), "voice flows audited: {total}");
    assert!(clear <= 25, "clear {clear}");
    assert!(
        nopolicy > omitted,
        "no-policy {nopolicy} vs omitted {omitted}"
    );
    let (c2, v2, o2, n2) = t13.get(alexa_net::DataType::CustomerId);
    assert!(c2 <= 15, "customer-id clear {c2}");
    assert!(c2 + v2 < o2 + n2);
}

#[test]
fn paper_table14_org_coverage() {
    let t14 = policy::table14(ix());
    for org in [
        "Amazon Technologies, Inc.",
        "Chartable Holding Inc",
        "Podtrac Inc",
        "Spotify AB",
        "Triton Digital, Inc.",
        "Dilli Labs LLC",
        "Life Covenant Church, Inc.",
    ] {
        assert!(t14.rows.contains_key(org), "missing org {org}");
    }
    // ~32 skills contact non-Amazon endpoints (paper: 32).
    let n = t14.non_amazon_skills();
    assert!((28..=40).contains(&n), "non-Amazon skills: {n}");
}

#[test]
fn paper_validation_f1() {
    let v = policy::validation(ix());
    // Paper: 87.41% micro; ours must be high but imperfect.
    assert!(
        v.micro.f1 > 0.82 && v.micro.f1 < 1.0,
        "micro F1 {}",
        v.micro.f1
    );
    assert!(
        v.macro_avg.recall < v.macro_avg.precision,
        "quirks should cost recall"
    );
}
