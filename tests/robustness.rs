//! Cross-seed robustness: the reproduction's qualitative findings must not
//! be artifacts of one lucky seed. Each paper-scale claim is checked on
//! three independent seeds with tolerant thresholds.

use alexa_audit::analysis::{bids, partners, policy, profiling, significance};
use alexa_audit::{AnalysisIndex, AuditConfig, AuditRun, Observations};
use std::sync::OnceLock;

const SEEDS: [u64; 3] = [7, 101, 9001];

fn runs() -> &'static Vec<Observations> {
    static RUNS: OnceLock<Vec<Observations>> = OnceLock::new();
    RUNS.get_or_init(|| {
        SEEDS
            .iter()
            .map(|&s| AuditRun::execute(AuditConfig::paper(s)))
            .collect()
    })
}

#[test]
fn uplift_direction_is_seed_stable() {
    for obs in runs() {
        let t5 = bids::table5(&AnalysisIndex::build(obs));
        let (vanilla, _) = t5.get("Vanilla").unwrap();
        let above = t5
            .rows
            .iter()
            .filter(|r| r.0 != "Vanilla" && r.1 > vanilla)
            .count();
        assert!(
            above >= 8,
            "seed {}: only {above}/9 above vanilla",
            obs.seed
        );
    }
}

#[test]
fn significance_split_is_seed_stable() {
    for obs in runs() {
        let t7 = significance::table7(&AnalysisIndex::build(obs));
        let sig = t7.significant();
        assert!(
            (4..=8).contains(&sig.len()),
            "seed {}: significant set {sig:?}",
            obs.seed
        );
        // The strongest planted categories always separate.
        assert!(
            sig.contains(&"Pets & Animals"),
            "seed {}: {sig:?}",
            obs.seed
        );
        assert!(sig.contains(&"Connected Car"), "seed {}: {sig:?}", obs.seed);
        // At least two of the three weak categories stay non-significant.
        let weak_ns = ["Smart Home", "Wine & Beverages", "Health & Fitness"]
            .iter()
            .filter(|w| !sig.contains(&w.to_string().as_str()))
            .count();
        assert!(weak_ns >= 2, "seed {}: {sig:?}", obs.seed);
    }
}

#[test]
fn sync_counts_are_seed_exact() {
    for obs in runs() {
        let ix = AnalysisIndex::build(obs);
        let sa = partners::sync_analysis(&ix);
        assert_eq!(sa.amazon_partners.len(), 41, "seed {}", obs.seed);
        assert_eq!(sa.downstream_parties.len(), 247, "seed {}", obs.seed);
        assert!(!sa.amazon_syncs_out, "seed {}", obs.seed);
    }
}

#[test]
fn policy_marginals_are_seed_exact() {
    for obs in runs() {
        let s = policy::policy_stats(&AnalysisIndex::build(obs));
        assert_eq!(
            (
                s.with_link,
                s.retrievable,
                s.mention_platform,
                s.link_platform_policy
            ),
            (214, 188, 59, 10),
            "seed {}",
            obs.seed
        );
    }
}

#[test]
fn dsar_missing_files_are_seed_exact() {
    for obs in runs() {
        let t12 = profiling::table12(&AnalysisIndex::build(obs));
        assert_eq!(
            t12.missing_files.len(),
            5,
            "seed {}: {:?}",
            obs.seed,
            t12.missing_files
        );
    }
}

#[test]
fn validation_f1_band_is_seed_stable() {
    for obs in runs() {
        let v = policy::validation(&AnalysisIndex::build(obs));
        assert!(
            v.micro.f1 > 0.8 && v.micro.f1 < 1.0,
            "seed {}: micro F1 {}",
            obs.seed,
            v.micro.f1
        );
    }
}

#[test]
fn different_seeds_produce_different_bid_corpora() {
    // Guard against accidentally ignoring the seed somewhere.
    let a: f64 = runs()[0].crawl["Vanilla"]
        .iter()
        .flat_map(|v| v.bids.iter())
        .map(|b| b.cpm)
        .sum();
    let b: f64 = runs()[1].crawl["Vanilla"]
        .iter()
        .flat_map(|v| v.bids.iter())
        .map(|b| b.cpm)
        .sum();
    assert_ne!(a, b);
}
